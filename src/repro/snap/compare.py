"""Journal equivalence checker for the snapshot determinism contract.

``python -m repro.snap.compare a.jsonl b.jsonl`` asserts that two
checkpoint journals contain identical per-strategy outcomes.  CI runs the
same sweep with ``--snapshots`` and ``--no-snapshots`` and feeds both
journals through this tool: any behavioural difference a forked run could
introduce shows up as a field-level diff here.

Normalization is deliberately minimal:

* records are keyed by ``(stage, strategy_id)`` — snapshot grouping
  reorders dispatch, so journal line order is not part of the contract;
* ``wall_seconds`` and ``run_id`` are stripped — real time and attempt
  naming are not simulation outputs (``attempts``/``cached`` are kept:
  snapshotting must not change retry or cache behaviour).

Everything else — throughput, resets, socket censuses, observed pairs,
event counts, timeout verdicts — must match bit for bit.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Optional, Tuple

from repro.core.checkpoint import CheckpointJournal
from repro.core.executor import RunOutcome

#: per-outcome fields that are not simulation outputs
_STRIP_FIELDS = ("wall_seconds", "run_id")

OutcomeKey = Tuple[str, Optional[int]]


def normalized_outcomes(path: str) -> Dict[OutcomeKey, str]:
    """Load a journal into ``(stage, strategy_id) -> canonical outcome``."""
    completed = CheckpointJournal(path).load()
    normalized: Dict[OutcomeKey, str] = {}
    for key, outcome in completed.items():
        normalized[key] = _canonical(outcome)
    return normalized

def _canonical(outcome: RunOutcome) -> str:
    data = outcome.to_dict()
    for field_name in _STRIP_FIELDS:
        data.pop(field_name, None)
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def compare_journals(path_a: str, path_b: str) -> Tuple[bool, str]:
    """``(identical, human-readable report)`` for two journals."""
    outcomes_a = normalized_outcomes(path_a)
    outcomes_b = normalized_outcomes(path_b)
    lines = []
    only_a = sorted(
        (k for k in outcomes_a if k not in outcomes_b),
        key=lambda key: (key[0], key[1] if key[1] is not None else -1),
    )
    only_b = sorted(
        (k for k in outcomes_b if k not in outcomes_a),
        key=lambda key: (key[0], key[1] if key[1] is not None else -1),
    )
    for key in only_a:
        lines.append(f"only in {path_a}: stage={key[0]} strategy={key[1]}")
    for key in only_b:
        lines.append(f"only in {path_b}: stage={key[0]} strategy={key[1]}")
    shared = sorted(
        (k for k in outcomes_a if k in outcomes_b),
        key=lambda key: (key[0], key[1] if key[1] is not None else -1),
    )
    for key in shared:
        if outcomes_a[key] != outcomes_b[key]:
            record_a = json.loads(outcomes_a[key])
            record_b = json.loads(outcomes_b[key])
            fields = sorted(
                name
                for name in set(record_a) | set(record_b)
                if record_a.get(name) != record_b.get(name)
            )
            lines.append(
                f"diverged: stage={key[0]} strategy={key[1]} fields={fields}"
            )
    if lines:
        return False, "\n".join(lines)
    return True, f"{len(shared)} outcome(s) identical"


def main(argv: Optional[list] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 2:
        print("usage: python -m repro.snap.compare <journal-a> <journal-b>",
              file=sys.stderr)
        return 2
    identical, report = compare_journals(args[0], args[1])
    print(report)
    return 0 if identical else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    raise SystemExit(main())
