"""Snapshot-engine configuration.

Like :class:`~repro.core.supervisor.SupervisionConfig`, this is a runtime
knob: it is excluded from the campaign fingerprint, so enabling or tuning
snapshots never invalidates caches, journals, or fabric ledgers.  The
determinism guard (``verify_fraction``) is what makes that safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SnapshotConfig:
    """How the snapshot/fork engine behaves (picklable, fingerprint-neutral).

    Parameters
    ----------
    enabled:
        Master switch (``--snapshots``).  Off by default: forked runs are
        behaviourally identical to full runs by contract, but the contract
        is opt-in.
    verify_fraction:
        Fraction of forked runs (deterministically sampled per strategy)
        that also execute in full; any :class:`RunResult` divergence
        poisons the prefix and emits a ``snap.divergence`` event.
    max_cached:
        In-process LRU capacity, in snapshots, per worker process.
    min_events:
        Prefixes shorter than this many events are not worth snapshotting;
        such runs execute in full.
    store:
        Optional path to a shared artifact store; snapshots are then also
        published under a ``snapshots`` namespace so fabric workers share
        warm prefixes cross-host.
    """

    enabled: bool = False
    verify_fraction: float = 0.05
    max_cached: int = 8
    min_events: int = 50
    store: Optional[str] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.verify_fraction <= 1.0):
            raise ValueError(
                f"verify_fraction must be within [0, 1], got {self.verify_fraction!r}"
            )
        if self.max_cached < 1:
            raise ValueError(f"max_cached must be >= 1, got {self.max_cached!r}")
        if self.min_events < 0:
            raise ValueError(f"min_events must be >= 0, got {self.min_events!r}")


__all__ = ["SnapshotConfig"]
