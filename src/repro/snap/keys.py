"""Prefix fingerprints: content addresses for snapshot reuse.

A snapshot is only reusable when *everything* that shapes the prefix is
identical: the full testbed configuration (protocol, variant, durations,
watchdog budgets, chaos config, ...), the simulator seed, and the trigger
descriptor the strategy arms on.  The fingerprint is a BLAKE2b digest over
the canonical JSON of exactly those inputs — the same digest discipline as
the run cache (:mod:`repro.core.cache`) — so snapshots slot into the
existing content-addressed store layout under a ``snapshots`` namespace.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.cache import _digest
from repro.core.executor import TestbedConfig

#: bumped whenever snapshot capture semantics change, so stale persistent
#: snapshots from an older engine are never resurrected
SNAP_VERSION = 1

#: store namespace for persistent (cross-host) snapshots
SNAPSHOT_NAMESPACE = "snapshots"


def run_key(config: TestbedConfig, seed: Optional[int]) -> str:
    """Identity of one (testbed, seed) prefix family (scout + build index)."""
    return _digest(
        {
            "snap": SNAP_VERSION,
            "config": config.to_dict(),
            "seed": config.seed if seed is None else seed,
        }
    )


def prefix_fingerprint(
    config: TestbedConfig, seed: Optional[int], descriptor: Sequence[str]
) -> str:
    """BLAKE2b fingerprint of one snapshot prefix.

    ``descriptor`` is the trigger descriptor from
    :func:`repro.core.generation.snapshot_descriptor` —
    ``("pair", state, packet_type)`` or ``("state", role, state)``.
    """
    return _digest(
        {
            "snap": SNAP_VERSION,
            "config": config.to_dict(),
            "seed": config.seed if seed is None else seed,
            "descriptor": list(descriptor),
        }
    )


__all__ = ["SNAP_VERSION", "SNAPSHOT_NAMESPACE", "prefix_fingerprint", "run_key"]
