"""Snapshot/fork engine: amortize shared simulation prefixes across a sweep.

Every strategy in a sweep replays an identical prefix (connection handshake
and throughput ramp) before its trigger state first becomes reachable.  The
snapshot engine runs that prefix once, deep-copies the paused simulator
world, and forks thousands of attack tails from the copy — guarded by a
determinism contract that executes a configurable fraction of forked runs
in full and disables the prefix on any divergence.

See ``docs/performance.md`` for the prefix-fingerprint contract and the
list of state deliberately excluded from snapshots.
"""

from repro.snap.config import SnapshotConfig
from repro.snap.engine import SnapshotEngine, execute_run, reset_engine
from repro.snap.keys import SNAP_VERSION, prefix_fingerprint

__all__ = [
    "SNAP_VERSION",
    "SnapshotConfig",
    "SnapshotEngine",
    "execute_run",
    "prefix_fingerprint",
    "reset_engine",
]
