"""Thin socket-style facade over the TCP engine.

Applications in :mod:`repro.apps` use these instead of poking the connection
object, mirroring how the paper's workloads (wget, Apache, iperf) sit on the
ordinary sockets API of the implementation under test.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.tcpstack.connection import TcpConnection
from repro.tcpstack.endpoint import TcpEndpoint


class TcpSocket:
    """A connected (or connecting) TCP socket."""

    def __init__(self, conn: TcpConnection):
        self._conn = conn

    @classmethod
    def connect(
        cls, endpoint: TcpEndpoint, remote_addr: str, remote_port: int, app: object = None
    ) -> "TcpSocket":
        return cls(endpoint.connect(remote_addr, remote_port, app))

    # ------------------------------------------------------------------
    @property
    def connection(self) -> TcpConnection:
        return self._conn

    @property
    def state(self) -> str:
        return self._conn.state

    @property
    def bytes_delivered(self) -> int:
        return self._conn.bytes_delivered

    @property
    def bytes_acked(self) -> int:
        return max(0, min(self._conn.snd_una, self._conn.data_end_seq) - self._conn.iss - 1)

    def send(self, nbytes: int) -> None:
        self._conn.app_send(nbytes)

    def close(self) -> None:
        self._conn.app_close()

    def abort(self) -> None:
        self._conn.app_abort()

    def exit(self) -> None:
        """Model the owning process exiting (half-close then RSTs)."""
        self._conn.app_exit()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TcpSocket {self._conn!r}>"


class TcpListener:
    """A listening port that hands accepted connections to an app factory."""

    def __init__(
        self,
        endpoint: TcpEndpoint,
        port: int,
        app_factory: Callable[[TcpConnection], object],
    ):
        self.endpoint = endpoint
        self.port = port
        endpoint.listen(port, app_factory)

    def close(self) -> None:
        self.endpoint.stop_listening(self.port)
