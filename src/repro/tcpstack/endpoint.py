"""Per-host TCP endpoint: demultiplexing, listeners, and the socket table.

Equivalent to the kernel's TCP layer on one of the paper's virtual machines.
The ``census`` method is the analog of the paper's ``netstat`` query that the
executor runs on the server after each test to detect resource-exhaustion
attacks.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.node import Host
from repro.netsim.simulator import Simulator
from repro.packets.packet import Packet
from repro.packets.tcp import TcpHeader
from repro.tcpstack.connection import TcpConnection
from repro.tcpstack.variants import TcpVariant

AppFactory = Callable[[TcpConnection], object]


class TcpEndpoint:
    """The TCP layer of one host."""

    EPHEMERAL_BASE = 40000

    def __init__(
        self,
        host: Host,
        variant: TcpVariant,
        iss_space: int = 1 << 32,
    ):
        self.host = host
        self.sim: Simulator = host.sim
        self.variant = variant
        self.address = host.address
        #: size of the initial-sequence-number space.  The SNAKE executor
        #: scales this down together with test duration and bandwidth so that
        #: sequence-space sweep attacks (hitseqwindow) have the same relative
        #: economics as in the paper's 1-minute, 100 Mbit testbed.
        self.iss_space = iss_space
        self.connections: Dict[Tuple[str, int, int], TcpConnection] = {}
        self.closed_connections: List[TcpConnection] = []
        self._listeners: Dict[int, AppFactory] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self.packets_received = 0
        self.resets_sent_closed_port = 0
        host.register_protocol("tcp", self)

    # ------------------------------------------------------------------
    # application-facing API
    # ------------------------------------------------------------------
    def listen(self, port: int, app_factory: AppFactory) -> None:
        if port in self._listeners:
            raise ValueError(f"port {port} already listening")
        self._listeners[port] = app_factory

    def stop_listening(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(
        self,
        remote_addr: str,
        remote_port: int,
        app: object = None,
        local_port: Optional[int] = None,
    ) -> TcpConnection:
        if local_port is None:
            local_port = self._allocate_port()
        conn = TcpConnection(self, local_port, remote_addr, remote_port, self.variant, app)
        key = conn.key
        if key in self.connections:
            raise ValueError(f"connection {key} already exists")
        self.connections[key] = conn
        conn.open_active()
        return conn

    def _allocate_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def next_iss(self) -> int:
        return self.sim.rng.randrange(self.iss_space)

    # ------------------------------------------------------------------
    # datapath
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        header: TcpHeader = packet.header  # type: ignore[assignment]
        key = (packet.src, int(header.dport), int(header.sport))
        conn = self.connections.get(key)
        if conn is not None:
            conn.on_packet(packet)
            return
        # no connection: maybe a listener accepts a SYN
        if (
            header.has_flag("flags", "syn")
            and not header.has_flag("flags", "ack")
            and not header.has_flag("flags", "rst")
            and int(header.dport) in self._listeners
        ):
            conn = TcpConnection(
                self, int(header.dport), packet.src, int(header.sport), self.variant
            )
            conn.app = self._listeners[int(header.dport)](conn)
            self.connections[key] = conn
            conn.open_passive(packet)
            return
        # closed port / stale segment: RST unless it was itself a RST
        if not header.has_flag("flags", "rst"):
            self._send_closed_port_rst(packet, header)

    def _send_closed_port_rst(self, packet: Packet, header: TcpHeader) -> None:
        self.resets_sent_closed_port += 1
        reply = TcpHeader(
            sport=int(header.dport),
            dport=int(header.sport),
            seq=int(header.ack) if header.has_flag("flags", "ack") else 0,
            ack=(int(header.seq) + packet.payload_len + 1) & 0xFFFFFFFF,
        )
        reply.flags_set("rst", "ack")
        self.host.send(Packet(self.address, packet.src, "tcp", reply, 0, sent_at=self.sim.now))

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def connection_closed(self, conn: TcpConnection) -> None:
        self.connections.pop(conn.key, None)
        self.closed_connections.append(conn)

    def census(self) -> Counter:
        """netstat analog: count live sockets by state."""
        counts: Counter = Counter()
        for conn in self.connections.values():
            counts[conn.state] += 1
        return counts

    def lingering_sockets(self) -> List[TcpConnection]:
        """Connections still holding state (not CLOSED, not TIME_WAIT)."""
        return [
            conn
            for conn in self.connections.values()
            if conn.state not in ("CLOSED", "TIME_WAIT")
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TcpEndpoint {self.address} {self.variant.name} conns={len(self.connections)}>"
