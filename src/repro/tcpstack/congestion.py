"""Congestion-control personalities.

Three senders, discriminated by the attacks in the paper:

* :class:`NewReno` — standard AIMD with slow start, congestion avoidance,
  fast retransmit and New Reno fast recovery.  Linux 3.0.0 / 3.13 profile.
* :class:`NaiveAckCounting` — the misbehaving-receiver-vulnerable sender of
  Savage et al. [11]: the congestion window grows on **every** ACK received,
  duplicates included, and no duplicate-ACK accounting limits growth to data
  actually outstanding.  Windows 95 profile.
* :class:`OverreactingNewReno` — responds to a duplicate-ACK-triggered
  retransmission like a timeout (window back to one segment, tiny ssthresh)
  instead of halving-and-recovering.  This models the Windows 8.1 behaviour
  behind the paper's new "Duplicate Acknowledgment Rate Limiting" attack:
  occasional duplicated PSH+ACK packets cost it ~5x throughput while Linux
  competitors shrug the same burst off.
"""

from __future__ import annotations


class CongestionControl:
    """Common state: cwnd/ssthresh in bytes, slow start vs avoidance."""

    #: whether the engine should run duplicate-ACK-triggered retransmission
    supports_fast_retransmit = True

    #: classic initial slow-start threshold (BSD/Linux route-metric
    #: default); prevents pathological slow-start overshoot on first use
    INITIAL_SSTHRESH = 65535

    def __init__(self, mss: int, initial_segments: int = 10):
        self.mss = mss
        self.cwnd = mss * initial_segments
        self.ssthresh: float = float(self.INITIAL_SSTHRESH)
        self.in_fast_recovery = False
        self._recovery_point = 0  # snd_nxt when recovery started
        self._avoidance_accum = 0
        self.fast_retransmits = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # events fed by the connection engine
    # ------------------------------------------------------------------
    def on_ack(self, newly_acked: int, snd_una: int) -> None:
        """A cumulative ACK advanced snd_una by ``newly_acked`` bytes to ``snd_una``."""
        raise NotImplementedError

    def on_duplicate_ack(self) -> None:
        """A duplicate ACK arrived (no window update, no data acked)."""

    def on_fast_retransmit(self, snd_nxt: int, now: float = 0.0) -> None:
        """Third duplicate ACK: the engine is retransmitting snd_una."""
        raise NotImplementedError

    def on_timeout(self) -> None:
        """Retransmission timer fired."""
        self.timeouts += 1
        self.ssthresh = max(2 * self.mss, self.cwnd // 2)
        self.cwnd = self.mss
        self.in_fast_recovery = False
        self._avoidance_accum = 0

    # ------------------------------------------------------------------
    def _grow(self, newly_acked: int) -> None:
        """Standard slow start / congestion avoidance growth.

        Avoidance accumulates ``mss * newly_acked`` per ACK and adds one MSS
        when the accumulator reaches ``cwnd * mss`` — i.e. one MSS per cwnd
        bytes acknowledged, the classic one-MSS-per-RTT rate.
        """
        if self.cwnd < self.ssthresh:
            self.cwnd += min(newly_acked, self.mss)
        else:
            self._avoidance_accum += self.mss * min(newly_acked, self.mss)
            if self._avoidance_accum >= self.cwnd * self.mss:
                self._avoidance_accum -= self.cwnd * self.mss
                self.cwnd += self.mss

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} cwnd={self.cwnd} ssthresh={self.ssthresh}>"


class NewReno(CongestionControl):
    """RFC 5681/6582 behaviour."""

    def on_ack(self, newly_acked: int, snd_una: int) -> None:
        if self.in_fast_recovery:
            # partial vs full ACK: leave recovery only once the cumulative
            # ACK passes the recovery point (RFC 6582).
            if snd_una >= self._recovery_point:
                self.in_fast_recovery = False
                self.cwnd = max(self.ssthresh, 2 * self.mss)
            else:
                # partial ACK: deflate by the amount acked, keep recovering
                self.cwnd = max(self.mss, self.cwnd - newly_acked + self.mss)
                return
        self._grow(newly_acked)

    def on_duplicate_ack(self) -> None:
        if self.in_fast_recovery:
            # window inflation: each dup ACK signals a packet has left
            self.cwnd += self.mss

    def on_fast_retransmit(self, snd_nxt: int, now: float = 0.0) -> None:
        self.fast_retransmits += 1
        self.ssthresh = max(2 * self.mss, self.cwnd // 2)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.in_fast_recovery = True
        self._recovery_point = snd_nxt
        self._avoidance_accum = 0


class NaiveAckCounting(CongestionControl):
    """Grows the window on every ACK, duplicates included (Windows 95).

    There is no duplicate-ACK-triggered retransmission: loss recovery is
    timeout-only, which matches pre-fast-retransmit stacks and leaves the
    window-growth path as the only response to duplicate ACKs — exactly the
    behaviour Duplicate Acknowledgment Spoofing exploits.
    """

    def on_ack(self, newly_acked: int, snd_una: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += self.mss
        else:
            self._avoidance_accum += self.mss * self.mss
            if self._avoidance_accum >= self.cwnd * self.mss:
                self._avoidance_accum -= self.cwnd * self.mss
                self.cwnd += self.mss

    def on_duplicate_ack(self) -> None:
        # the defining bug: duplicate ACKs also grow the window
        self.on_ack(0, 0)

    supports_fast_retransmit = False

    def on_fast_retransmit(self, snd_nxt: int, now: float = 0.0) -> None:  # pragma: no cover
        raise AssertionError("naive sender has no fast retransmit")


class OverreactingNewReno(NewReno):
    """Rate-limits itself under repeated duplicate-ACK bursts (Windows 8.1).

    A lone fast retransmit behaves exactly like New Reno, so ordinary
    competition is fair.  But when duplicate-ACK-triggered retransmissions
    recur within :attr:`BURST_WINDOW` seconds — which never happens with
    natural congestion losses but happens constantly when an attacker
    duplicates the occasional PSH+ACK ten times — the sender treats the burst
    like a timeout and collapses its window.  This models the throttling the
    paper observed as the "Duplicate Acknowledgment Rate Limiting" attack
    (~5x degradation on Windows 8.1, none on Linux).
    """

    BURST_WINDOW = 1.0

    def __init__(self, mss: int, initial_segments: int = 10):
        super().__init__(mss, initial_segments)
        self._last_fast_retransmit = float("-inf")

    def on_fast_retransmit(self, snd_nxt: int, now: float = 0.0) -> None:
        recurrent = (now - self._last_fast_retransmit) < self.BURST_WINDOW
        self._last_fast_retransmit = now
        if not recurrent:
            super().on_fast_retransmit(snd_nxt)
            return
        self.fast_retransmits += 1
        self.ssthresh = 2 * self.mss
        self.cwnd = self.mss
        self.in_fast_recovery = False
        self._avoidance_accum = 0


def make_congestion_control(kind: str, mss: int, initial_segments: int = 10) -> CongestionControl:
    """Factory keyed by :attr:`TcpVariant.congestion`."""
    if kind == "newreno":
        return NewReno(mss, initial_segments)
    if kind == "naive":
        return NaiveAckCounting(mss, initial_segments)
    if kind == "overreact":
        return OverreactingNewReno(mss, initial_segments)
    raise ValueError(f"unknown congestion control kind {kind!r}")
