"""RTT estimation and RTO computation (RFC 6298).

SRTT/RTTVAR smoothing with Karn's algorithm handled by the caller (samples
from retransmitted segments are simply never fed in).
"""

from __future__ import annotations

from typing import Optional


class RttEstimator:
    """Classic SRTT/RTTVAR estimator producing a clamped RTO."""

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(self, rto_initial: float = 1.0, rto_min: float = 0.2, rto_max: float = 60.0):
        self.rto_initial = rto_initial
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._rto = rto_initial
        self.samples = 0

    def sample(self, rtt: float) -> None:
        """Feed one RTT measurement (seconds, from an unretransmitted segment)."""
        if rtt < 0:
            raise ValueError("negative RTT sample")
        self.samples += 1
        if self.srtt is None or self.rttvar is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - rtt)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self._rto = self._clamp(self.srtt + self.K * self.rttvar)

    def backoff(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        self._rto = self._clamp(self._rto * 2.0)

    @property
    def rto(self) -> float:
        return self._rto

    def _clamp(self, value: float) -> float:
        return max(self.rto_min, min(self.rto_max, value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RttEstimator srtt={self.srtt} rto={self._rto:.3f}>"
