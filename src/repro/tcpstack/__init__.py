"""A from-scratch TCP implementation with per-OS behavioural variants.

This package substitutes for the paper's KVM guests.  It implements the full
RFC 793 connection lifecycle (all 11 states), reliability (sequence numbers,
cumulative ACKs, RTO with exponential backoff, fast retransmit), flow
control, and New Reno congestion control — plus *variant profiles* that model
the implementation differences the paper's discovered attacks depend on:

* **Linux 3.0.0** — interprets nonsensical flag combinations (responds to
  flagless packets with a duplicate ACK); retains CLOSE_WAIT sockets with
  undelivered data for up to 15 retransmission retries.
* **Linux 3.13** — same CLOSE_WAIT retention, but ignores invalid flag
  combinations (the paper notes 3.13 fixed them).
* **Windows 8.1** — resets on any packet with RST set regardless of other
  flags, ignores other invalid combinations; overreacts to duplicate-ACK
  bursts (collapses its congestion window instead of New Reno recovery).
* **Windows 95** — naive congestion control that grows cwnd on *every* ACK
  received, including duplicates (Savage et al.'s misbehaving-receiver
  precondition).
"""

from repro.tcpstack.variants import (
    LINUX_3_0,
    LINUX_3_13,
    TCP_VARIANTS,
    TcpVariant,
    WINDOWS_8_1,
    WINDOWS_95,
    get_variant,
)
from repro.tcpstack.congestion import (
    CongestionControl,
    NaiveAckCounting,
    NewReno,
    OverreactingNewReno,
    make_congestion_control,
)
from repro.tcpstack.rtt import RttEstimator
from repro.tcpstack.connection import TcpConnection
from repro.tcpstack.endpoint import TcpEndpoint
from repro.tcpstack.socket_api import TcpListener, TcpSocket

__all__ = [
    "TcpVariant",
    "TCP_VARIANTS",
    "LINUX_3_0",
    "LINUX_3_13",
    "WINDOWS_8_1",
    "WINDOWS_95",
    "get_variant",
    "CongestionControl",
    "NewReno",
    "NaiveAckCounting",
    "OverreactingNewReno",
    "make_congestion_control",
    "RttEstimator",
    "TcpConnection",
    "TcpEndpoint",
    "TcpSocket",
    "TcpListener",
]
