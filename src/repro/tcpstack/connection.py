"""The TCP connection engine: one transmission control block + state machine.

Implements the full RFC 793 lifecycle with reliability, flow control and
pluggable congestion control, and consults the active
:class:`~repro.tcpstack.variants.TcpVariant` wherever real implementations
diverge (invalid flag combinations, CLOSE_WAIT retention, duplicate-ACK
response, in-window SYN/RST semantics).

Application data is abstract: ``app_send(n)`` queues *n* bytes of stream; the
engine segments, sequences, retransmits, and delivers byte counts to the
application object.  Application callbacks (all optional, dispatched by
name): ``on_connected``, ``on_data(nbytes)``, ``on_acked``,
``on_remote_close``, ``on_closed(reason)``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.netsim.simulator import Simulator, Timer
from repro.packets.packet import Packet
from repro.packets.tcp import TcpHeader, tcp_packet_type, VALID_FLAG_COMBOS
from repro.tcpstack.congestion import make_congestion_control
from repro.tcpstack.rtt import RttEstimator
from repro.tcpstack.seq import unwrap, wrap, seq_in_window, segment_acceptable
from repro.tcpstack.variants import (
    CLOSE_WAIT_ABORT,
    CLOSE_WAIT_RETAIN,
    INVALID_FLAGS_IGNORE,
    INVALID_FLAGS_INTERPRET,
    INVALID_FLAGS_RST_PRIORITY,
    TcpVariant,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.tcpstack.endpoint import TcpEndpoint

# state names match the dot spec so the tracker and the stack agree
CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
CLOSING = "CLOSING"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"

SYNCHRONIZED_STATES = frozenset(
    {ESTABLISHED, FIN_WAIT_1, FIN_WAIT_2, CLOSE_WAIT, CLOSING, LAST_ACK, TIME_WAIT}
)
DATA_SEND_STATES = frozenset({ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, CLOSING, LAST_ACK})


class TcpConnection:
    """One TCP connection (the TCB plus its behaviour)."""

    def __init__(
        self,
        endpoint: "TcpEndpoint",
        local_port: int,
        remote_addr: str,
        remote_port: int,
        variant: TcpVariant,
        app: object = None,
    ):
        self.endpoint = endpoint
        self.sim: Simulator = endpoint.sim
        self.variant = variant
        self.local_addr = endpoint.address
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.app = app
        self.mss = variant.mss

        self.state = CLOSED
        # send side
        self.iss = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_max = 0  # highest sequence ever sent (for post-rewind ACK validity)
        self.send_limit = 0  # app bytes queued so far (stream octets)
        self.peer_window = variant.mss  # until first real window arrives
        self._fin_queued = False
        self._fin_sent = False
        self._send_times: Dict[int, float] = {}  # end_seq -> send time (Karn-clean)
        self._push_points: list = []  # seqs at app-write boundaries -> PSH flags
        self._dupacks = 0
        self._retries = 0
        self._syn_retries = 0
        # receive side
        self.irs = 0
        self.rcv_nxt = 0
        self.rcv_wnd = variant.receive_window
        self.peer_wscale = 0  # learned from the peer's SYN/SYN+ACK
        self._ooo: list = []  # sorted disjoint [start, end) intervals
        # app-visible lifecycle
        self.app_closed = False  # app called close()
        self.app_gone = False  # process exited; data gets RSTs
        self.close_reason: Optional[str] = None
        self.opened_at = self.sim.now
        self.closed_at: Optional[float] = None
        # congestion control / timers
        self.cc = make_congestion_control(variant.congestion, self.mss, variant.initial_cwnd_segments)
        self.rtt = RttEstimator(variant.rto_initial, variant.rto_min, variant.rto_max)
        self.rto_timer = Timer(self.sim, self._on_rto, name="rto")
        self.persist_timer = Timer(self.sim, self._on_persist, name="persist")
        self._persist_interval = variant.rto_initial
        self.time_wait_timer = Timer(self.sim, self._on_time_wait_expired, name="time-wait")
        self.zero_window_probes = 0
        # statistics
        self.segments_sent = 0
        self.segments_received = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.retransmissions = 0
        self.invalid_flag_packets = 0
        self.resets_sent = 0

    # ------------------------------------------------------------------
    # identity / bookkeeping
    # ------------------------------------------------------------------
    @property
    def key(self) -> Tuple[str, int, int]:
        return (self.remote_addr, self.local_port, self.remote_port)

    @property
    def _data_start(self) -> int:
        return self.iss + 1

    @property
    def data_end_seq(self) -> int:
        return self._data_start + self.send_limit

    @property
    def unacked_bytes(self) -> int:
        return max(0, self.snd_nxt - self.snd_una)

    @property
    def unsent_bytes(self) -> int:
        return max(0, self.data_end_seq - max(self.snd_nxt, self._data_start))

    @property
    def fin_acked(self) -> bool:
        return self._fin_sent and self.snd_una >= self.data_end_seq + 1

    @property
    def advertised_window(self) -> int:
        """Window field value to put on the wire (after scaling)."""
        buffered = sum(end - start for start, end in self._ooo)
        avail = max(0, self.rcv_wnd - buffered)
        return min(0xFFFF, avail >> self.variant.window_scale)

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        """Client connect(): send SYN, enter SYN_SENT."""
        if self.state != CLOSED:
            raise RuntimeError(f"open_active in state {self.state}")
        self.iss = self.endpoint.next_iss()
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self.snd_max = self.snd_nxt
        self.state = SYN_SENT
        self._send_syn()

    def open_passive(self, syn_packet: Packet) -> None:
        """Server side: a SYN arrived for a listening port."""
        header: TcpHeader = syn_packet.header  # type: ignore[assignment]
        self.irs = header.seq
        self.rcv_nxt = header.seq + 1
        self.peer_wscale = int(header.wscale_opt)
        if header.mss_opt:
            self.mss = min(self.mss, int(header.mss_opt))
        self.iss = self.endpoint.next_iss()
        self.snd_una = self.iss
        self.snd_nxt = self.iss + 1
        self.snd_max = self.snd_nxt
        self.state = SYN_RCVD
        self._send_flags("syn", "ack", seq=self.iss)
        self.rto_timer.start(self.rtt.rto)

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------
    def app_send(self, nbytes: int) -> None:
        """Queue ``nbytes`` of application stream for transmission."""
        if nbytes < 0:
            raise ValueError("cannot send negative bytes")
        if self.app_closed or self._fin_queued:
            raise RuntimeError("send after close")
        self.send_limit += nbytes
        # real stacks set PSH on the segment completing an application
        # write; this is what makes PSH+ACK packets "occur only
        # occasionally in the data stream" as the paper relies on
        if nbytes > 0:
            self._push_points.append(self.data_end_seq)
        if self.state in DATA_SEND_STATES:
            self._flush()

    def app_close(self) -> None:
        """Orderly close: FIN after all queued data is transmitted."""
        if self.app_closed or self.state in (CLOSED, TIME_WAIT):
            return
        self.app_closed = True
        if self.state == SYN_SENT:
            self._destroy("closed-before-established")
            return
        if (
            self.state == CLOSE_WAIT
            and self.variant.close_wait_policy == CLOSE_WAIT_ABORT
            and (self.unacked_bytes > 0 or self.unsent_bytes > 0)
        ):
            # Windows-style: don't linger in CLOSE_WAIT behind undeliverable
            # data; abort the connection and free the socket.
            self._send_rst(seq=self.snd_nxt)
            self._destroy("close-wait-abort")
            return
        self._fin_queued = True
        self._flush()

    def app_exit(self) -> None:
        """The owning process exits mid-transfer (wget killed).

        Linux sends a FIN and thereafter answers any data for the dead
        process with RST — the precondition for the CLOSE_WAIT resource
        exhaustion attack when those RSTs are dropped.
        """
        if self.state in (CLOSED, TIME_WAIT):
            return
        self.app_closed = True
        self.app_gone = True
        if self.variant.exit_sends_fin_then_rst:
            self._fin_queued = True
            self._flush()
        else:
            self._send_rst(seq=self.snd_nxt)
            self._destroy("exit-abort")

    def app_abort(self) -> None:
        """SO_LINGER-style abortive close: RST immediately."""
        if self.state in (CLOSED, TIME_WAIT):
            return
        self._send_rst(seq=self.snd_nxt)
        self._destroy("aborted")

    # ------------------------------------------------------------------
    # segment transmission
    # ------------------------------------------------------------------
    def _header(self, seq: int) -> TcpHeader:
        header = TcpHeader(
            sport=self.local_port,
            dport=self.remote_port,
            seq=wrap(seq),
            window=self.advertised_window,
            mss_opt=self.mss,
            wscale_opt=self.variant.window_scale,
        )
        return header

    def _transmit(self, header: TcpHeader, payload_len: int = 0) -> None:
        self.segments_sent += 1
        self.bytes_sent += payload_len
        packet = Packet(
            self.local_addr, self.remote_addr, "tcp", header, payload_len, sent_at=self.sim.now
        )
        self.endpoint.host.send(packet)

    def _send_syn(self) -> None:
        header = self._header(self.iss)
        header.flags_set("syn")
        self._transmit(header)
        self.rto_timer.start(self.rtt.rto)

    def _send_flags(self, *flags: str, seq: Optional[int] = None, ack: bool = True) -> None:
        header = self._header(self.snd_nxt if seq is None else seq)
        header.flags_set(*flags)
        if "ack" in flags or ack:
            header.set_flag("flags", "ack")
            header.ack = wrap(self.rcv_nxt)
        self._transmit(header)

    def _send_ack(self) -> None:
        self._send_flags("ack")

    def _send_rst(self, seq: int) -> None:
        self.resets_sent += 1
        header = self._header(seq)
        header.flags_set("rst")
        self._transmit(header)

    def _send_data_segment(self, seq: int, length: int, retransmit: bool = False) -> None:
        header = self._header(seq)
        header.flags_set("ack")
        header.ack = wrap(self.rcv_nxt)
        end = seq + length
        if end >= self.data_end_seq:
            header.set_flag("flags", "psh")
        else:
            while self._push_points and self._push_points[0] < seq:
                self._push_points.pop(0)
            if self._push_points and self._push_points[0] <= end:
                header.set_flag("flags", "psh")
                while self._push_points and self._push_points[0] <= end:
                    self._push_points.pop(0)
        self._transmit(header, payload_len=length)
        if retransmit:
            self.retransmissions += 1
            self._send_times.pop(seq + length, None)
        else:
            self._send_times[seq + length] = self.sim.now

    def _send_fin_segment(self) -> None:
        header = self._header(self.snd_nxt)
        header.flags_set("fin", "ack")
        header.ack = wrap(self.rcv_nxt)
        self._transmit(header)

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Send whatever the congestion and flow-control windows allow."""
        if self.state not in DATA_SEND_STATES:
            return
        window = min(self.cc.cwnd, max(self.peer_window, 0))
        progressed = False
        while True:
            in_flight = self.snd_nxt - self.snd_una
            space = window - in_flight
            if self.snd_nxt < self.data_end_seq:
                if space < min(self.mss, self.data_end_seq - self.snd_nxt):
                    break
                length = min(self.mss, self.data_end_seq - self.snd_nxt)
                self._send_data_segment(self.snd_nxt, length)
                self.snd_nxt += length
                self.snd_max = max(self.snd_max, self.snd_nxt)
                progressed = True
                continue
            if self._fin_queued and not self._fin_sent and self.snd_nxt == self.data_end_seq:
                self._send_fin_segment()
                self._fin_sent = True
                self.snd_nxt += 1
                self.snd_max = max(self.snd_max, self.snd_nxt)
                if self.state == ESTABLISHED or self.state == SYN_RCVD:
                    self.state = FIN_WAIT_1
                elif self.state == CLOSE_WAIT:
                    self.state = LAST_ACK
                progressed = True
            break
        if progressed and self.unacked_bytes > 0 and not self.rto_timer.armed:
            self.rto_timer.start(self.rtt.rto)
        # zero-window persist: with data pending, nothing in flight, and the
        # peer advertising no window, probe so a window update (or the reset
        # of a dead peer) can reach us -- otherwise the connection deadlocks
        if (
            self.peer_window <= 0
            and self.unacked_bytes == 0
            and (self.unsent_bytes > 0 or (self._fin_queued and not self._fin_sent))
            and not self.persist_timer.armed
        ):
            self._persist_interval = self.rtt.rto
            self.persist_timer.start(self._persist_interval)

    # ------------------------------------------------------------------
    # retransmission
    # ------------------------------------------------------------------
    def _retransmit_head(self) -> None:
        """Retransmit the segment starting at snd_una (go-back-N head)."""
        if self.snd_una < self.data_end_seq:
            length = min(self.mss, self.data_end_seq - self.snd_una)
            self._send_data_segment(self.snd_una, length, retransmit=True)
        elif self._fin_sent and not self.fin_acked:
            self.retransmissions += 1
            self._send_fin_segment()
        elif self.state == SYN_RCVD:
            self._send_flags("syn", "ack", seq=self.iss)

    def _on_rto(self) -> None:
        if self.state == SYN_SENT:
            self._syn_retries += 1
            if self._syn_retries > self.variant.syn_retries:
                self._destroy("connect-timeout")
                return
            self.rtt.backoff()
            self._send_syn()
            return
        if self.snd_una >= self.snd_nxt:
            return  # everything acked; stale timer
        self._retries += 1
        if self._retries > self.variant.data_retries:
            self._send_rst(seq=self.snd_nxt)
            self._destroy("retransmission-limit")
            return
        self.cc.on_timeout()
        self.rtt.backoff()
        self._dupacks = 0
        self._send_times.clear()
        if self.snd_una < self.data_end_seq:
            # go-back-N: rewind to the cumulative ACK point and resend from
            # there as the window reopens (we have no SACK, so every hole
            # after the first can only be filled by resending sequentially).
            # The head retransmission itself bypasses the peer window, like
            # real stacks do (the data was in-window when first sent).
            if self._fin_sent and not self.fin_acked:
                self._fin_sent = False
            length = min(self.mss, self.data_end_seq - self.snd_una)
            self._send_data_segment(self.snd_una, length, retransmit=True)
            self.snd_nxt = self.snd_una + length
        else:
            self._retransmit_head()
        self.rto_timer.start(self.rtt.rto)

    def _on_persist(self) -> None:
        """Zero-window probe (RFC 1122 4.2.2.17): one byte past the edge."""
        if self.state not in DATA_SEND_STATES:
            return
        if self.peer_window > 0 or self.unacked_bytes > 0:
            return
        if self.unsent_bytes > 0:
            self.zero_window_probes += 1
            self._send_data_segment(self.snd_nxt, 1)
            self.snd_nxt += 1
            self.snd_max = max(self.snd_max, self.snd_nxt)
        elif self._fin_queued and not self._fin_sent:
            # only the FIN is pending: push it through the closed window
            self._send_fin_segment()
            self._fin_sent = True
            self.snd_nxt += 1
            self.snd_max = max(self.snd_max, self.snd_nxt)
            if self.state in (ESTABLISHED, SYN_RCVD):
                self.state = FIN_WAIT_1
            elif self.state == CLOSE_WAIT:
                self.state = LAST_ACK
            return
        else:
            return
        self._persist_interval = min(self._persist_interval * 2, self.variant.rto_max)
        self.persist_timer.start(self._persist_interval)

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        self.segments_received += 1
        header: TcpHeader = packet.header  # type: ignore[assignment]
        ptype = tcp_packet_type(header)

        if ptype not in VALID_FLAG_COMBOS:
            self.invalid_flag_packets += 1
            policy = self.variant.invalid_flags_policy
            if policy == INVALID_FLAGS_IGNORE:
                return
            if policy == INVALID_FLAGS_RST_PRIORITY:
                if header.has_flag("flags", "rst"):
                    self._process_rst(header, packet)
                return
            # INVALID_FLAGS_INTERPRET falls through to normal processing;
            # _interpret_fallback handles the "no flags at all" case.

        if self.state == SYN_SENT:
            self._packet_in_syn_sent(header, packet)
            return
        if self.state == TIME_WAIT:
            # retransmitted FIN from the peer re-ACKs; everything else ignored
            if header.has_flag("flags", "fin"):
                self._send_ack()
            return

        responded = self._packet_in_sync_state(header, packet, ptype)
        if (
            not responded
            and ptype not in VALID_FLAG_COMBOS
            and self.variant.invalid_flags_policy == INVALID_FLAGS_INTERPRET
            and self.state in SYNCHRONIZED_STATES
        ):
            # Linux 3.0.0 observed behaviour: best-effort interpretation ends
            # in an (incorrect) duplicate ACK even for flagless packets.
            self._send_ack()

    # ------------------------------------------------------------------
    def _packet_in_syn_sent(self, header: TcpHeader, packet: Packet) -> None:
        has_syn = header.has_flag("flags", "syn")
        has_ack = header.has_flag("flags", "ack")
        has_rst = header.has_flag("flags", "rst")
        if has_ack:
            ack = unwrap(header.ack, self.snd_nxt)
            if ack != self.snd_nxt:  # unacceptable ACK
                if not has_rst:
                    self._send_rst(seq=ack)
                return
        if has_rst:
            if has_ack:
                self._destroy("reset-by-peer")
            return
        if has_syn and has_ack:
            self.irs = header.seq
            self.rcv_nxt = header.seq + 1
            self.snd_una = self.snd_nxt
            self.peer_wscale = int(header.wscale_opt)
            self.peer_window = header.window << self.peer_wscale
            if header.mss_opt:
                self.mss = min(self.mss, int(header.mss_opt))
                self.cc.mss = self.mss
            self.state = ESTABLISHED
            self.rto_timer.stop()
            self._retries = 0
            self._send_ack()
            self._notify("on_connected")
            self._flush()
        elif has_syn:
            # simultaneous open
            self.irs = header.seq
            self.rcv_nxt = header.seq + 1
            self.state = SYN_RCVD
            self._send_flags("syn", "ack", seq=self.iss)

    # ------------------------------------------------------------------
    def _packet_in_sync_state(self, header: TcpHeader, packet: Packet, ptype: str) -> bool:
        """Process a segment in a synchronized (or SYN_RCVD) state.

        Returns True if we sent anything in response (used by the
        invalid-flags interpretation fallback).
        """
        seg_len = packet.payload_len
        seg_seq = unwrap(header.seq, self.rcv_nxt)
        has_rst = header.has_flag("flags", "rst")
        has_syn = header.has_flag("flags", "syn")
        has_ack = header.has_flag("flags", "ack")
        has_fin = header.has_flag("flags", "fin")

        # RST: Watson-style in-window check
        if has_rst:
            self._process_rst(header, packet)
            return True

        # sequence acceptability (skip for bare ACK probes at exact edge)
        if not segment_acceptable(seg_seq, seg_len + (1 if has_fin else 0), self.rcv_nxt, self.rcv_wnd):
            self._send_ack()  # challenge ACK
            return True

        # in-window SYN on a synchronized connection: RFC 793 reset
        if has_syn and self.state in SYNCHRONIZED_STATES and self.variant.syn_in_window_resets:
            self._send_rst(seq=self.snd_nxt)
            self._destroy("syn-in-window")
            return True

        responded = False
        if has_ack:
            responded = self._process_ack(header) or responded

        if seg_len > 0:
            responded = self._process_payload(seg_seq, seg_len, header) or responded

        if has_fin:
            responded = self._process_fin(seg_seq + seg_len) or responded

        return responded

    # ------------------------------------------------------------------
    def _process_rst(self, header: TcpHeader, packet: Packet) -> None:
        if not self.variant.rst_in_window_resets:
            # strict check: only exact rcv_nxt match resets
            if unwrap(header.seq, self.rcv_nxt) != self.rcv_nxt:
                return
            self._destroy("reset-by-peer")
            return
        seg_seq = unwrap(header.seq, self.rcv_nxt)
        if seq_in_window(seg_seq, self.rcv_nxt, max(self.rcv_wnd, 1)):
            self._destroy("reset-by-peer")

    # ------------------------------------------------------------------
    def _process_ack(self, header: TcpHeader) -> bool:
        ack = unwrap(header.ack, self.snd_una)
        if ack > self.snd_max:
            # acks data we never sent (e.g. proxy-mangled): re-assert our state
            self._send_ack()
            return True
        if ack > self.snd_nxt:
            # ACK for data sent before a go-back-N rewind: skip ahead
            self.snd_nxt = ack
        if self.state == SYN_RCVD and ack >= self.iss + 1:
            self.state = ESTABLISHED
            self.rto_timer.stop()
            self._retries = 0
            self._notify("on_connected")
        if ack > self.snd_una:
            newly_acked = ack - self.snd_una
            was_recovering = self.cc.in_fast_recovery
            self.snd_una = ack
            self.peer_window = header.window << self.peer_wscale
            if self.peer_window > 0:
                self.persist_timer.stop()
            self._retries = 0
            self._dupacks = 0
            self._sample_rtt(ack)
            self.cc.on_ack(newly_acked, self.snd_una)
            if was_recovering and self.cc.in_fast_recovery:
                # New Reno partial ACK: the next hole starts at the new
                # snd_una; retransmit it immediately.
                self._retransmit_head()
            if self.unacked_bytes > 0:
                self.rto_timer.start(self.rtt.rto)
            else:
                self.rto_timer.stop()
            self._handle_fin_acked()
            self._notify("on_acked")
            self._flush()
            return False
        # ack == snd_una (or older): potential duplicate
        if ack == self.snd_una and self.snd_nxt > self.snd_una:
            self._dupacks += 1
            if self._dupacks == 3 and self.cc.supports_fast_retransmit:
                self.cc.on_fast_retransmit(self.snd_nxt, self.sim.now)
                self._retransmit_head()
                self.rto_timer.start(self.rtt.rto)
            else:
                self.cc.on_duplicate_ack()
                self._flush()
        else:
            # pure window update: reopen transmission if the peer's window
            # grew (and disarm the persist probe)
            new_window = header.window << self.peer_wscale
            if new_window > self.peer_window:
                self.peer_window = new_window
                if new_window > 0:
                    self.persist_timer.stop()
                self._flush()
        return False

    def _sample_rtt(self, ack: int) -> None:
        exact = None
        for end_seq in list(self._send_times):
            if end_seq <= ack:
                sent_at = self._send_times.pop(end_seq)
                if end_seq == ack:
                    exact = sent_at
        # Sample only the segment that directly produced this ACK, and never
        # during loss recovery: a cumulative ACK released after a hole fills
        # reflects hole-repair time, not path RTT.
        if exact is not None and not self.cc.in_fast_recovery:
            self.rtt.sample(self.sim.now - exact)

    def _handle_fin_acked(self) -> None:
        if not self.fin_acked:
            return
        if self.state == FIN_WAIT_1:
            self.state = FIN_WAIT_2
        elif self.state == CLOSING:
            self._enter_time_wait()
        elif self.state == LAST_ACK:
            self._destroy("closed")

    # ------------------------------------------------------------------
    def _process_payload(self, seg_seq: int, seg_len: int, header: TcpHeader) -> bool:
        if self.app_gone:
            # data for a dead process: answer with RST (Linux behaviour)
            self._send_rst(seq=unwrap(header.ack, self.snd_nxt))
            return True
        seg_end = seg_seq + seg_len
        window_end = self.rcv_nxt + self.rcv_wnd
        seg_end = min(seg_end, window_end)
        if seg_seq <= self.rcv_nxt < seg_end:
            old = self.rcv_nxt
            self.rcv_nxt = seg_end
            self._drain_ooo()
            delivered = self.rcv_nxt - old
            self.bytes_delivered += delivered
            self._notify("on_data", delivered)
        elif seg_seq > self.rcv_nxt:
            self._insert_ooo(seg_seq, seg_end)
        # old or duplicate data still gets an ACK (that's the dupack path)
        self._send_ack()
        return True

    def _insert_ooo(self, start: int, end: int) -> None:
        if start >= end:
            return
        intervals = self._ooo + [(start, end)]
        intervals.sort()
        merged = [intervals[0]]
        for s, e in intervals[1:]:
            last_s, last_e = merged[-1]
            if s <= last_e:
                merged[-1] = (last_s, max(last_e, e))
            else:
                merged.append((s, e))
        self._ooo = merged

    def _drain_ooo(self) -> None:
        while self._ooo and self._ooo[0][0] <= self.rcv_nxt:
            start, end = self._ooo.pop(0)
            if end > self.rcv_nxt:
                self.rcv_nxt = end

    # ------------------------------------------------------------------
    def _process_fin(self, fin_seq: int) -> bool:
        if fin_seq != self.rcv_nxt:
            return False  # out-of-order FIN; peer will retransmit
        self.rcv_nxt += 1
        self._notify("on_remote_close")
        if self.state in (ESTABLISHED, SYN_RCVD):
            self.state = CLOSE_WAIT
        elif self.state == FIN_WAIT_1:
            if self.fin_acked:
                self._send_ack()
                self._enter_time_wait()
                return True
            self.state = CLOSING
        elif self.state == FIN_WAIT_2:
            self._send_ack()
            self._enter_time_wait()
            return True
        self._send_ack()
        return True

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def _enter_time_wait(self) -> None:
        self.state = TIME_WAIT
        self.rto_timer.stop()
        self.time_wait_timer.start(self.variant.time_wait_duration)

    def _on_time_wait_expired(self) -> None:
        self._destroy("closed")

    def _destroy(self, reason: str) -> None:
        if self.state == CLOSED and self.close_reason is not None:
            return
        was_reset = reason in ("reset-by-peer", "syn-in-window")
        self.state = CLOSED
        self.close_reason = reason
        self.closed_at = self.sim.now
        self.rto_timer.stop()
        self.persist_timer.stop()
        self.time_wait_timer.stop()
        self.endpoint.connection_closed(self)
        if was_reset:
            self._notify("on_reset")
        self._notify("on_closed", reason)

    # ------------------------------------------------------------------
    def _notify(self, callback: str, *args: object) -> None:
        if self.app is None:
            return
        fn = getattr(self.app, callback, None)
        if fn is not None:
            fn(self, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpConnection {self.local_addr}:{self.local_port}->"
            f"{self.remote_addr}:{self.remote_port} {self.state} "
            f"una={self.snd_una - self.iss} nxt={self.snd_nxt - self.iss}>"
        )
