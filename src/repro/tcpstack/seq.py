"""32-bit sequence-number arithmetic.

Internally the stack keeps unbounded integers (convenient and fast in
Python); on the wire, sequence and acknowledgment numbers are 32-bit and the
attack proxy can set them to anything.  :func:`unwrap` maps a 32-bit wire
value to the unbounded representative nearest a local reference, after which
ordinary comparisons implement the RFC's modular window checks.
"""

from __future__ import annotations

SEQ_MASK = 0xFFFFFFFF
SEQ_MOD = 1 << 32
SEQ_HALF = 1 << 31


def wrap(value: int) -> int:
    """Unbounded -> wire (32-bit)."""
    return value & SEQ_MASK


def unwrap(wire_value: int, reference: int) -> int:
    """Wire (32-bit) -> the unbounded value congruent mod 2^32 nearest ``reference``."""
    base = reference - (reference & SEQ_MASK)
    candidate = base + (wire_value & SEQ_MASK)
    if candidate - reference > SEQ_HALF:
        candidate -= SEQ_MOD
    elif reference - candidate > SEQ_HALF:
        candidate += SEQ_MOD
    return candidate


def seq_in_window(seq: int, window_start: int, window_size: int) -> bool:
    """Is unbounded ``seq`` within [window_start, window_start + window_size)?"""
    return window_start <= seq < window_start + window_size


def segment_acceptable(seg_seq: int, seg_len: int, rcv_nxt: int, rcv_wnd: int) -> bool:
    """RFC 793 segment acceptability test (on unwrapped values)."""
    if seg_len == 0:
        if rcv_wnd == 0:
            return seg_seq == rcv_nxt
        return seq_in_window(seg_seq, rcv_nxt, rcv_wnd)
    if rcv_wnd == 0:
        return False
    return (
        seq_in_window(seg_seq, rcv_nxt, rcv_wnd)
        or seq_in_window(seg_seq + seg_len - 1, rcv_nxt, rcv_wnd)
    )
