"""Implementation-variant profiles for the TCP stack.

SNAKE treats implementations as black boxes; what distinguishes "Linux
3.0.0" from "Windows 95" in the paper is observable protocol behaviour.
Each :class:`TcpVariant` captures the behavioural knobs that the paper's
attacks discriminate on.  The engine consults the active variant at every
decision point where real implementations diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

#: how an implementation reacts to packets whose flag combination never
#: occurs in normal operation (SYN+FIN, no flags at all, ...)
INVALID_FLAGS_INTERPRET = "interpret"  # process the packet as best it can (Linux 3.0.0)
INVALID_FLAGS_IGNORE = "ignore"  # silently drop (Linux 3.13, Windows 95)
INVALID_FLAGS_RST_PRIORITY = "rst_priority"  # reset if RST set, else ignore (Windows 8.1)

#: what happens when the application closes a connection sitting in
#: CLOSE_WAIT with data still unacknowledged in the send queue
CLOSE_WAIT_RETAIN = "retain"  # keep retransmitting; socket lingers (Linux)
CLOSE_WAIT_ABORT = "abort"  # give up quickly: send RST, free the socket (Windows)


@dataclass(frozen=True)
class TcpVariant:
    """Behavioural profile of one TCP implementation."""

    name: str
    #: congestion-control personality (see :mod:`repro.tcpstack.congestion`)
    congestion: str = "newreno"
    invalid_flags_policy: str = INVALID_FLAGS_IGNORE
    close_wait_policy: str = CLOSE_WAIT_RETAIN
    #: data retransmission attempts before the connection is force-closed
    #: (Linux tcp_retries2 default is 15 -> "13 to 30 minutes")
    data_retries: int = 15
    #: SYN retransmission attempts before connect() fails
    syn_retries: int = 5
    mss: int = 1400
    #: advertised receive window in bytes (scaled via window_scale)
    receive_window: int = 262144
    #: RFC 1323 window-scale shift advertised in the handshake
    window_scale: int = 3
    initial_cwnd_segments: int = 10
    rto_initial: float = 1.0
    rto_min: float = 0.2
    rto_max: float = 60.0
    #: 2*MSL for TIME_WAIT.  Real stacks use 60-240 s; tests here last a few
    #: simulated seconds, so the default is scaled down proportionally.
    time_wait_duration: float = 1.0
    #: does a sequence-valid SYN on an established connection reset it?
    #: (RFC 793 says yes; this is the SYN-Reset attack surface)
    syn_in_window_resets: bool = True
    #: does an RST anywhere in the receive window reset the connection?
    #: (Watson's "slipping in the window"; all real stacks of the era)
    rst_in_window_resets: bool = True
    #: on exit with undelivered data, does the client send FIN and then
    #: answer further data with RST (Linux wget-killed behaviour)?
    exit_sends_fin_then_rst: bool = True

    def with_overrides(self, **kwargs: object) -> "TcpVariant":
        return replace(self, **kwargs)


LINUX_3_0 = TcpVariant(
    name="linux-3.0.0",
    congestion="newreno",
    invalid_flags_policy=INVALID_FLAGS_INTERPRET,
    close_wait_policy=CLOSE_WAIT_RETAIN,
)

LINUX_3_13 = TcpVariant(
    name="linux-3.13",
    congestion="newreno",
    invalid_flags_policy=INVALID_FLAGS_IGNORE,
    close_wait_policy=CLOSE_WAIT_RETAIN,
)

WINDOWS_8_1 = TcpVariant(
    name="windows-8.1",
    congestion="overreact",
    invalid_flags_policy=INVALID_FLAGS_RST_PRIORITY,
    close_wait_policy=CLOSE_WAIT_ABORT,
    # Windows abandons undeliverable connections after far fewer
    # retransmissions than Linux's 15 (TcpMaxDataRetransmissions=5);
    # scaled to the shortened test window like every other timer
    data_retries=3,
)

WINDOWS_95 = TcpVariant(
    name="windows-95",
    congestion="naive",
    invalid_flags_policy=INVALID_FLAGS_IGNORE,
    close_wait_policy=CLOSE_WAIT_ABORT,
    initial_cwnd_segments=2,
    data_retries=4,
    # pre-RFC1323 stack: no window scaling
    receive_window=65535,
    window_scale=0,
)

TCP_VARIANTS: Dict[str, TcpVariant] = {
    variant.name: variant
    for variant in (LINUX_3_0, LINUX_3_13, WINDOWS_8_1, WINDOWS_95)
}


def get_variant(name: str) -> TcpVariant:
    try:
        return TCP_VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown TCP variant {name!r}; available: {sorted(TCP_VARIANTS)}"
        ) from None
