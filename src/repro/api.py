"""The stable campaign API: one spec in, one result out.

Everything a campaign needs — target, generation knobs, retry policy,
cache, batching, checkpointing, observability — lives in a single
:class:`CampaignSpec` value, and :func:`run_campaign` is the one entry
point.  A spec round-trips exactly through :meth:`CampaignSpec.to_dict` /
:meth:`CampaignSpec.from_dict`, so a campaign is reproducible from a single
JSON artifact (``repro campaign --spec spec.json``) and its
:meth:`~CampaignSpec.fingerprint` names the campaign for checkpoint-journal
compatibility checks.

The pre-spec calling convention (``Controller(config, workers=...,
retries=..., ...)``) keeps working, and :func:`run_campaign_legacy` wraps
it for callers that still pass the old kwarg soup — it emits a
``DeprecationWarning`` and simply builds the equivalent spec.

    >>> from repro.api import CampaignSpec, run_campaign
    >>> from repro.core import TestbedConfig
    >>> spec = CampaignSpec(testbed=TestbedConfig(protocol="tcp"),
    ...                     sample_every=500, cache_dir="runcache")
    >>> result = run_campaign(spec)                    # doctest: +SKIP
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Callable, Dict, Optional

from repro.core.cache import campaign_fingerprint
from repro.core.controller import CampaignResult, Controller
from repro.core.detector import ConfirmationPolicy
from repro.core.executor import TestbedConfig
from repro.core.generation import GenerationConfig
from repro.core.parallel import DEFAULT_BATCH_SIZE, RetryPolicy
from repro.core.supervisor import SupervisionConfig
from repro.fabric.config import FabricConfig
from repro.obs.config import ObsConfig
from repro.snap.config import SnapshotConfig

#: bump on incompatible spec-dict changes; ``from_dict`` upgrades known old
#: versions through :data:`_SPEC_UPGRADES` and rejects unknown ones
SPEC_VERSION = 2


def _upgrade_v1_to_v2(data: Dict[str, Any]) -> Dict[str, Any]:
    """v1 → v2: the multi-tenant service fields, with safe defaults.

    v2 adds ``tenant`` (quota accounting identity, default ``"default"``)
    and ``service`` (service-mode runtime knobs, default ``None``).  Both
    are fingerprint-neutral, so an upgraded spec names the same campaign.
    """
    upgraded = dict(data)
    upgraded.setdefault("tenant", "default")
    upgraded.setdefault("service", None)
    upgraded["version"] = 2
    return upgraded


#: explicit spec-version upgrade chain: ``{from_version: hook}``; applied
#: repeatedly by :meth:`CampaignSpec.from_dict` until ``SPEC_VERSION``
_SPEC_UPGRADES: Dict[int, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    1: _upgrade_v1_to_v2,
}

#: GenerationConfig fields whose JSON lists must come back as tuples for the
#: round-trip to be exact (dataclass defaults are tuples)
_GENERATION_SEQUENCE_FIELDS = (
    "drop_percents", "duplicate_copies", "delay_seconds", "batch_windows",
    "inject_counts", "hsw_intervals", "hsw_stride_divisors",
)

ProgressHook = Callable[[str, int, int], None]


def _from_known(cls: type, data: Dict[str, Any]) -> Dict[str, Any]:
    known = {f.name for f in fields(cls)}
    return {k: v for k, v in data.items() if k in known}


def _generation_from_dict(data: Dict[str, Any]) -> GenerationConfig:
    kwargs = _from_known(GenerationConfig, data)
    for name in _GENERATION_SEQUENCE_FIELDS:
        if name in kwargs:
            kwargs[name] = tuple(kwargs[name])
    return GenerationConfig(**kwargs)


@dataclass
class CampaignSpec:
    """Everything that defines one campaign, as one picklable value.

    Field groups mirror the subsystems they configure: ``testbed`` is the
    executor's world, ``generation`` the strategy enumeration (``None`` =
    protocol defaults), ``retry`` the fault-tolerance policy, ``cache_dir``
    / ``batch_size`` the execution engine, ``supervision`` the hang-proof
    worker pool (enabled by default; disable to fall back to the plain
    pool), ``confirmation`` the baseline replication + noise-band verdict
    policy, ``checkpoint`` / ``resume`` the journal, and ``obs`` the
    telemetry (``None`` = everything off).
    """

    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    generation: Optional[GenerationConfig] = None
    workers: Optional[int] = None
    confirm: bool = True
    sample_every: int = 1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint: Optional[str] = None
    resume: bool = False
    cache_dir: Optional[str] = None
    batch_size: int = DEFAULT_BATCH_SIZE
    obs: Optional[ObsConfig] = None
    supervision: SupervisionConfig = field(default_factory=SupervisionConfig)
    confirmation: ConfirmationPolicy = field(default_factory=ConfirmationPolicy)
    #: distribute the sweep over a shared artifact store (see
    #: :mod:`repro.fabric`); ``None`` keeps the single-process runtime.
    #: Like workers/batch_size, this changes *how* the campaign runs, not
    #: what it computes, so it is excluded from :meth:`fingerprint`.
    fabric: Optional[FabricConfig] = None
    #: snapshot/fork engine (see :mod:`repro.snap`); disabled by default.
    #: Fingerprint-neutral for the same reason as ``supervision``: the
    #: determinism contract guarantees identical outcomes either way.
    snapshots: SnapshotConfig = field(default_factory=SnapshotConfig)
    #: quota-accounting identity under the campaign service (spec v2).
    #: Fingerprint-neutral: who submitted a campaign does not change what
    #: it computes, so tenants share the run cache.
    tenant: str = "default"
    #: service-mode runtime knobs (spec v2), an open dict so the control
    #: plane can evolve without another spec bump; ``None`` outside the
    #: service.  Fingerprint-neutral like ``fabric``.
    service: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dump; exact inverse of :meth:`from_dict`."""
        return {
            "version": SPEC_VERSION,
            "testbed": self.testbed.to_dict(),
            "generation": None if self.generation is None else asdict(self.generation),
            "workers": self.workers,
            "confirm": self.confirm,
            "sample_every": self.sample_every,
            "retry": asdict(self.retry),
            "checkpoint": self.checkpoint,
            "resume": self.resume,
            "cache_dir": self.cache_dir,
            "batch_size": self.batch_size,
            "obs": None if self.obs is None else asdict(self.obs),
            "supervision": asdict(self.supervision),
            "confirmation": asdict(self.confirmation),
            "fabric": None if self.fabric is None else self.fabric.to_dict(),
            "snapshots": asdict(self.snapshots),
            "tenant": self.tenant,
            "service": None if self.service is None else dict(self.service),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output (e.g. a spec file).

        Sequence-valued generation knobs normalize back to tuples, so
        ``from_dict(spec.to_dict()) == spec`` holds exactly.  Unknown keys
        inside the nested configs are ignored for forward compatibility.
        Old spec versions are upgraded in place through the
        :data:`_SPEC_UPGRADES` hook chain (v1 dicts gain the v2
        ``tenant``/``service`` defaults); a version with no upgrade path
        is rejected loudly.
        """
        version = data.get("version", SPEC_VERSION)
        while version != SPEC_VERSION:
            upgrade = _SPEC_UPGRADES.get(version)
            if upgrade is None:
                raise ValueError(
                    f"spec version {version!r} not supported (expected "
                    f"{SPEC_VERSION}; upgradable: {sorted(_SPEC_UPGRADES)})"
                )
            data = upgrade(data)
            version = data.get("version", SPEC_VERSION)
        generation = data.get("generation")
        obs = data.get("obs")
        return cls(
            testbed=TestbedConfig.from_dict(data.get("testbed", {})),
            generation=None if generation is None else _generation_from_dict(generation),
            workers=data.get("workers"),
            confirm=data.get("confirm", True),
            sample_every=data.get("sample_every", 1),
            retry=RetryPolicy(**_from_known(RetryPolicy, data.get("retry", {}))),
            checkpoint=data.get("checkpoint"),
            resume=data.get("resume", False),
            cache_dir=data.get("cache_dir"),
            batch_size=data.get("batch_size", DEFAULT_BATCH_SIZE),
            obs=None if obs is None else ObsConfig(**_from_known(ObsConfig, obs)),
            supervision=SupervisionConfig(
                **_from_known(SupervisionConfig, data.get("supervision") or {})
            ),
            confirmation=ConfirmationPolicy(
                **_from_known(ConfirmationPolicy, data.get("confirmation") or {})
            ),
            fabric=(
                None if data.get("fabric") is None
                else FabricConfig(**_from_known(FabricConfig, data["fabric"]))
            ),
            snapshots=SnapshotConfig(
                **_from_known(SnapshotConfig, data.get("snapshots") or {})
            ),
            tenant=data.get("tenant", "default"),
            service=data.get("service"),
        )

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Hash of the outcome-affecting slice of this spec.

        Two specs with equal fingerprints compute the same campaign:
        workers, batch size, cache/checkpoint paths, supervision and
        observability are excluded because they change how a campaign
        runs, not what it finds; the confirmation policy *is* included
        because baseline replicas and the noise band change which
        strategies count as attacks.  Stored in the checkpoint-journal
        header so ``resume`` refuses a journal written under a different
        spec.
        """
        return campaign_fingerprint(
            self.testbed, self.generation, self.sample_every, self.confirm,
            self.retry.retries, confirmation=self.confirmation,
        )

    def with_overrides(self, **changes: Any) -> "CampaignSpec":
        """A copy with the given fields replaced (convenience for the CLI)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    def build_controller(self) -> Controller:
        """Materialize the configured :class:`~repro.core.Controller`."""
        return Controller(
            self.testbed,
            generation=self.generation,
            workers=self.workers,
            confirm=self.confirm,
            sample_every=self.sample_every,
            retries=self.retry.retries,
            retry_backoff=self.retry.backoff,
            checkpoint=self.checkpoint,
            resume=self.resume,
            obs=self.obs,
            cache_dir=self.cache_dir,
            batch_size=self.batch_size,
            supervision=self.supervision,
            confirmation=self.confirmation,
            snapshots=self.snapshots,
        )


# keep pytest from collecting the dataclass as a test class
CampaignSpec.__test__ = False  # type: ignore[attr-defined]


def run_campaign(
    spec: CampaignSpec, progress: Optional[ProgressHook] = None
) -> CampaignResult:
    """Run one campaign described by ``spec`` — the stable entry point.

    ``progress(stage, done, total)`` is invoked from the parent process as
    runs finish ("baseline" / "sweep" / "confirm").

    A spec with ``fabric`` set runs distributed: the sweep is sharded into
    leased work units on the shared artifact store and any ``repro worker``
    processes pointed at the same store help execute them (see
    :mod:`repro.fabric`).
    """
    if spec.fabric is not None:
        from repro.fabric.coordinator import run_fabric_campaign

        return run_fabric_campaign(spec, progress=progress)
    return spec.build_controller().run_campaign(progress=progress)


def spec_from_kwargs(config: TestbedConfig, **kwargs: Any) -> CampaignSpec:
    """Deprecated: translate the pre-spec kwarg soup into a spec.

    Accepts exactly the keywords the old ``Controller(config, ...)`` call
    took (``workers``, ``confirm``, ``sample_every``, ``retries``,
    ``retry_backoff``, ``checkpoint``, ``resume``, ``obs``, plus the newer
    ``cache_dir``/``batch_size``); the shim and its tests share this so
    legacy calls provably build the same spec.

    .. deprecated::
        Construct :class:`CampaignSpec` directly; this translator will be
        removed together with :func:`run_campaign_legacy` in the release
        after next.
    """
    warnings.warn(
        "spec_from_kwargs() is deprecated and will be removed in the "
        "release after next; construct CampaignSpec(...) directly",
        DeprecationWarning,
        stacklevel=2,
    )
    return _spec_from_kwargs(config, **kwargs)


def _spec_from_kwargs(config: TestbedConfig, **kwargs: Any) -> CampaignSpec:
    retry = RetryPolicy(
        retries=kwargs.pop("retries", 0), backoff=kwargs.pop("retry_backoff", 0.0)
    )
    spec = CampaignSpec(
        testbed=config,
        generation=kwargs.pop("generation", None),
        workers=kwargs.pop("workers", None),
        confirm=kwargs.pop("confirm", True),
        sample_every=kwargs.pop("sample_every", 1),
        retry=retry,
        checkpoint=kwargs.pop("checkpoint", None),
        resume=kwargs.pop("resume", False),
        cache_dir=kwargs.pop("cache_dir", None),
        batch_size=kwargs.pop("batch_size", DEFAULT_BATCH_SIZE),
        obs=kwargs.pop("obs", None),
        supervision=kwargs.pop("supervision", SupervisionConfig()),
        confirmation=kwargs.pop("confirmation", ConfirmationPolicy()),
        fabric=kwargs.pop("fabric", None),
        snapshots=kwargs.pop("snapshots", SnapshotConfig()),
    )
    if kwargs:
        raise TypeError(f"unknown campaign keyword(s): {sorted(kwargs)}")
    return spec


def run_campaign_legacy(
    config: TestbedConfig,
    progress: Optional[ProgressHook] = None,
    **kwargs: Any,
) -> CampaignResult:
    """Deprecated kwarg-style entry point; use :func:`run_campaign`.

    Thin shim: builds the equivalent :class:`CampaignSpec` and delegates.

    .. deprecated::
        Will be removed in the release after next, together with
        :func:`spec_from_kwargs`.
    """
    warnings.warn(
        "run_campaign_legacy(config, **kwargs) is deprecated and will be "
        "removed in the release after next; build a CampaignSpec and call "
        "run_campaign(spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_campaign(_spec_from_kwargs(config, **kwargs), progress=progress)


__all__ = [
    "SPEC_VERSION",
    "CampaignSpec",
    "run_campaign",
    "run_campaign_legacy",
    "spec_from_kwargs",
]
