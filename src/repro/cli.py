"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``campaign``    — run a full SNAKE campaign against one implementation
* ``baseline``    — run and print the non-attack baseline metrics
* ``searchspace`` — the Section VI-C injection-model comparison
* ``variants``    — list the available implementation variants
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core import (
    Controller,
    Executor,
    JournalMismatch,
    TestbedConfig,
    compare_injection_models,
)
from repro.core.generation import StrategyGenerator
from repro.core.reporting import (
    render_attack_clusters,
    render_campaign_health,
    render_searchspace,
    render_table1,
)
from repro.dccpstack.variants import DCCP_VARIANTS
from repro.packets.dccp import DCCP_FORMAT
from repro.packets.tcp import TCP_FORMAT
from repro.statemachine.specs import dccp_state_machine, tcp_state_machine
from repro.tcpstack.variants import TCP_VARIANTS


def _add_target_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--protocol", choices=("tcp", "dccp"), default="tcp")
    parser.add_argument("--variant", default=None,
                        help="implementation variant (default: linux-3.13 / linux-3.13-dccp)")


def _resolve_variant(args: argparse.Namespace) -> str:
    if args.variant is not None:
        return args.variant
    return "linux-3.13" if args.protocol == "tcp" else "linux-3.13-dccp"


def cmd_variants(args: argparse.Namespace) -> int:
    print("TCP variants:")
    for name, variant in sorted(TCP_VARIANTS.items()):
        print(f"  {name:14s} congestion={variant.congestion:10s} "
              f"invalid-flags={variant.invalid_flags_policy:12s} "
              f"close-wait={variant.close_wait_policy}")
    print("DCCP variants:")
    for name, variant in sorted(DCCP_VARIANTS.items()):
        print(f"  {name:22s} request-type-check-first={variant.request_type_check_first}")
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    config = TestbedConfig(protocol=args.protocol, variant=_resolve_variant(args))
    result = Executor(config).run(None)
    print(f"target connection:    {result.target_bytes} bytes")
    print(f"competing connection: {result.competing_bytes} bytes")
    print(f"server1 census:       {result.server1_census or '{}'}")
    print(f"observed (state, packet type) pairs:")
    for state, ptype in result.observed_pairs:
        print(f"  {state:12s} {ptype}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    config = TestbedConfig(
        protocol=args.protocol,
        variant=_resolve_variant(args),
        max_events=args.max_events,
        run_budget=args.run_budget,
    )
    checkpoint = args.resume if args.resume else args.checkpoint
    controller = Controller(
        config,
        workers=args.workers,
        sample_every=args.sample_every,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
        checkpoint=checkpoint,
        resume=args.resume is not None,
    )
    started = time.time()

    def progress(stage: str, done: int, total: int) -> None:
        if done == total or done % 50 == 0:
            sys.stderr.write(f"\r[{time.time() - started:6.1f}s] {stage}: {done}/{total}  ")
            sys.stderr.flush()

    try:
        result = controller.run_campaign(progress=progress)
    except JournalMismatch as exc:
        sys.stderr.write(f"\nerror: {exc}\n")
        return 2
    sys.stderr.write("\n")
    print(render_table1([result]))
    print()
    print(render_attack_clusters(result))
    print()
    print(render_campaign_health(result))
    return 0


def cmd_searchspace(args: argparse.Namespace) -> int:
    if args.protocol == "tcp":
        generator = StrategyGenerator("tcp", TCP_FORMAT, tcp_state_machine())
    else:
        generator = StrategyGenerator("dccp", DCCP_FORMAT, dccp_state_machine())
    config = TestbedConfig(protocol=args.protocol, variant=_resolve_variant(args))
    baseline_run = Executor(config).run(None)
    print(render_searchspace(compare_injection_models(generator, baseline_run)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SNAKE: state-machine-guided attack discovery (DSN 2015 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("variants", help="list implementation variants")
    sub.set_defaults(handler=cmd_variants)

    sub = subparsers.add_parser("baseline", help="run the non-attack baseline")
    _add_target_arguments(sub)
    sub.set_defaults(handler=cmd_baseline)

    sub = subparsers.add_parser("campaign", help="run a full attack-finding campaign")
    _add_target_arguments(sub)
    sub.add_argument("--sample-every", type=int, default=25,
                     help="execute 1 in N strategies (1 = full sweep)")
    sub.add_argument("--workers", type=int, default=1)
    sub.add_argument("--retries", type=int, default=1,
                     help="retries (with derived seeds) before a failed/"
                          "timed-out run is classified as an error")
    sub.add_argument("--retry-backoff", type=float, default=0.0,
                     help="base seconds slept before a retry, doubled per attempt")
    sub.add_argument("--run-budget", type=float, default=None,
                     help="wall-clock watchdog: real seconds allowed per simulation run")
    sub.add_argument("--max-events", type=int, default=None,
                     help="event watchdog: simulator events allowed per run")
    sub.add_argument("--checkpoint", metavar="JOURNAL", default=None,
                     help="journal completed runs to this JSONL file as they finish")
    sub.add_argument("--resume", metavar="JOURNAL", default=None,
                     help="resume from (and keep appending to) an existing journal, "
                          "skipping already-completed strategies")
    sub.set_defaults(handler=cmd_campaign)

    sub = subparsers.add_parser("searchspace", help="Section VI-C comparison")
    _add_target_arguments(sub)
    sub.set_defaults(handler=cmd_searchspace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
