"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``campaign``    — run a full SNAKE campaign against one implementation
* ``serve``       — run the multi-tenant campaign service (HTTP control plane)
* ``submit``      — submit a campaign to a running service over HTTP
* ``worker``      — serve leased work units from a shared fabric store
* ``top``         — live fleet view of a fabric campaign (from the store)
* ``baseline``    — run and print the non-attack baseline metrics
* ``report``      — inspect a recorded campaign's trace/metrics telemetry
* ``searchspace`` — the Section VI-C injection-model comparison
* ``variants``    — list the available implementation variants

Shared artifact stores are addressed by URL: ``dir://PATH`` (sharded JSON
directory), ``sqlite://PATH`` (one WAL database file) or ``memory://NAME``
(in-process, tests only).  Bare paths still work but are deprecated.

Global ``-v/-vv`` and ``-q`` flags control the standard :mod:`logging`
output from the ``repro.*`` subsystem loggers (controller, parallel pool,
observability); they go to stderr so stdout stays parseable.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from dataclasses import replace
from typing import List, Optional

from repro.api import CampaignSpec, run_campaign
from repro.core import (
    ConfirmationPolicy,
    Executor,
    JournalMismatch,
    RetryPolicy,
    SupervisionConfig,
    TestbedConfig,
    compare_injection_models,
)
from repro.core.generation import StrategyGenerator
from repro.core.reporting import (
    render_attack_clusters,
    render_campaign_health,
    render_flaky_detections,
    render_fleet,
    render_metrics_summary,
    render_searchspace,
    render_slowest_runs,
    render_snapshot_summary,
    render_strategy_timeline,
    render_supervision_report,
    render_table1,
    render_throughput_summary,
    render_transition_log,
    render_verdicts,
)
from repro.dccpstack.variants import DCCP_VARIANTS
from repro.obs import ObsConfig
from repro.obs.store import (
    baseline_stats,
    confirm_verdicts,
    has_baseline,
    load_metrics_snapshot,
    load_trace_dir,
    quarantine_events,
    run_spans,
    strategy_ids,
    strategy_timeline,
    supervisor_kills,
    transition_events,
)
from repro.packets.dccp import DCCP_FORMAT
from repro.packets.tcp import TCP_FORMAT
from repro.statemachine.specs import dccp_state_machine, tcp_state_machine
from repro.tcpstack.variants import TCP_VARIANTS


def _configure_logging(args: argparse.Namespace) -> None:
    """Map ``-q``/``-v``/``-vv`` to a root logging level on stderr."""
    if getattr(args, "quiet", False):
        level = logging.ERROR
    else:
        verbosity = getattr(args, "verbose", 0)
        level = {0: logging.WARNING, 1: logging.INFO}.get(verbosity, logging.DEBUG)
    logging.basicConfig(
        level=level,
        stream=sys.stderr,
        format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
        datefmt="%H:%M:%S",
    )


def _nonnegative_int(value: str) -> int:
    """Argparse type: an int >= 0 (``--retries``)."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer")
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _positive_int(value: str) -> int:
    """Argparse type: an int >= 1 (``--batch-size``, ``--workers``, ...)."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _positive_float(value: str) -> float:
    """Argparse type: a float > 0 (``--run-budget``, ``--slot-budget``)."""
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not a number")
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {parsed}")
    return parsed


def _nonnegative_float(value: str) -> float:
    """Argparse type: a float >= 0 (``--retry-backoff``, ``--noise-sigmas``)."""
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not a number")
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _fraction(value: str) -> float:
    """Argparse type: a float in [0, 1] (``--snap-verify-fraction``)."""
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not a number")
    if not 0.0 <= parsed <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {parsed}")
    return parsed


def _add_target_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--protocol", choices=("tcp", "dccp"), default="tcp")
    parser.add_argument("--variant", default=None,
                        help="implementation variant (default: linux-3.13 / linux-3.13-dccp)")


def _testbed_from_args(args: argparse.Namespace, **overrides: object) -> TestbedConfig:
    """The one place target flags become a :class:`TestbedConfig`.

    Every subcommand that takes ``--protocol``/``--variant`` goes through
    here; ``overrides`` carries subcommand-specific extras (watchdogs).
    """
    variant = args.variant
    if variant is None:
        variant = "linux-3.13" if args.protocol == "tcp" else "linux-3.13-dccp"
    return TestbedConfig(protocol=args.protocol, variant=variant, **overrides)  # type: ignore[arg-type]


def cmd_variants(args: argparse.Namespace) -> int:
    print("TCP variants:")
    for name, variant in sorted(TCP_VARIANTS.items()):
        print(f"  {name:14s} congestion={variant.congestion:10s} "
              f"invalid-flags={variant.invalid_flags_policy:12s} "
              f"close-wait={variant.close_wait_policy}")
    print("DCCP variants:")
    for name, variant in sorted(DCCP_VARIANTS.items()):
        print(f"  {name:22s} request-type-check-first={variant.request_type_check_first}")
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    result = Executor(_testbed_from_args(args)).run(None)
    print(f"target connection:    {result.target_bytes} bytes")
    print(f"competing connection: {result.competing_bytes} bytes")
    print(f"server1 census:       {result.server1_census or '{}'}")
    print(f"observed (state, packet type) pairs:")
    for state, ptype in result.observed_pairs:
        print(f"  {state:12s} {ptype}")
    return 0


def _obs_from_args(args: argparse.Namespace) -> Optional[ObsConfig]:
    """Build the campaign's observability config from CLI flags (or None)."""
    if not (args.trace_dir or args.metrics_out or args.profile):
        return None
    return ObsConfig(
        trace_dir=args.trace_dir,
        metrics=args.metrics_out is not None,
        profile_dir=args.profile,
        profile_keep=args.profile_keep,
    )


#: supervisor tuning flags that contradict ``--no-supervision``; the
#: argparse defaults are ``None`` so explicit use is detectable
_SUPERVISION_FLAGS = (
    ("slot_budget", "--slot-budget"),
    ("quarantine_after", "--quarantine-after"),
    ("max_tasks_per_child", "--max-tasks-per-child"),
)

#: downstream default when --quarantine-after is not given
DEFAULT_QUARANTINE_AFTER = 3

#: snapshot tuning flags that require ``--snapshots``; argparse defaults
#: are ``None`` so explicit use is detectable
_SNAPSHOT_FLAGS = (
    ("snap_verify_fraction", "--snap-verify-fraction"),
    ("snap_store", "--snap-store"),
)


def _validate_campaign_flags(args: argparse.Namespace) -> Optional[str]:
    """Flag-combination checks, rejected at parse time like the scalar
    argparse types.  Returns an error message or ``None``."""
    if args.no_supervision:
        for attr, flag in _SUPERVISION_FLAGS:
            if getattr(args, attr) is not None:
                return f"{flag} has no effect with --no-supervision"
    if args.snapshots and args.no_snapshots:
        return "--snapshots and --no-snapshots are mutually exclusive"
    if not args.snapshots:
        for attr, flag in _SNAPSHOT_FLAGS:
            if getattr(args, attr) is not None:
                return f"{flag} has no effect without --snapshots"
    if args.resume is True and not args.checkpoint:
        # bare --resume names no journal; require --checkpoint to supply it
        return "--resume without a journal requires --checkpoint"
    if isinstance(args.resume, str) and args.checkpoint and args.checkpoint != args.resume:
        return (
            f"--resume {args.resume} and --checkpoint {args.checkpoint} "
            "name different journals"
        )
    if args.fabric and not args.store:
        return "--fabric requires --store (the shared artifact store)"
    if not args.fabric:
        for attr, flag in (
            ("store", "--store"), ("lease_ttl", "--lease-ttl"), ("lease_size", "--lease-size"),
            ("telemetry_interval", "--telemetry-interval"), ("stall_window", "--stall-window"),
            ("store_retries", "--store-retries"), ("store_backoff", "--store-backoff"),
        ):
            if getattr(args, attr) is not None:
                return f"{flag} has no effect without --fabric"
    return None


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    """Build the campaign's :class:`CampaignSpec` from CLI flags.

    ``--spec FILE`` loads the whole spec from one JSON artifact (written by
    ``--spec-out`` or by hand) and takes precedence over the per-field
    flags; ``--no-cache`` still applies on top so a cached spec can be
    forced to re-execute, ``--fabric --store`` still applies on top so
    a recorded spec can be re-run distributed, and
    ``--snapshots``/``--no-snapshots`` still apply on top (they are
    fingerprint-neutral, so toggling them never changes the campaign's
    identity).
    """
    resume_path = args.resume if isinstance(args.resume, str) else None
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as fh:
            spec = CampaignSpec.from_dict(json.load(fh))
    else:
        quarantine_after = (
            args.quarantine_after if args.quarantine_after is not None
            else DEFAULT_QUARANTINE_AFTER
        )
        spec = CampaignSpec(
            testbed=_testbed_from_args(
                args, max_events=args.max_events, run_budget=args.run_budget
            ),
            workers=args.workers,
            sample_every=args.sample_every,
            retry=RetryPolicy(retries=args.retries, backoff=args.retry_backoff),
            checkpoint=resume_path or args.checkpoint,
            resume=args.resume is not None,
            cache_dir=args.cache_dir,
            batch_size=args.batch_size,
            obs=_obs_from_args(args),
            supervision=SupervisionConfig(
                enabled=not args.no_supervision,
                slot_budget=args.slot_budget,
                max_tasks_per_child=args.max_tasks_per_child,
                quarantine_after=quarantine_after,
            ),
            confirmation=ConfirmationPolicy(
                baseline_runs=args.baseline_runs,
                noise_sigmas=args.noise_sigmas,
            ),
        )
    if args.no_cache:
        spec = spec.with_overrides(cache_dir=None)
    if args.no_snapshots:
        spec = spec.with_overrides(snapshots=replace(spec.snapshots, enabled=False))
    elif args.snapshots:
        snap_overrides = {"enabled": True}
        if args.snap_verify_fraction is not None:
            snap_overrides["verify_fraction"] = args.snap_verify_fraction
        if args.snap_store is not None:
            snap_overrides["store"] = args.snap_store
        spec = spec.with_overrides(
            snapshots=replace(spec.snapshots, **snap_overrides)
        )
    if args.fabric:
        from repro.fabric.config import FabricConfig

        spec = spec.with_overrides(
            fabric=FabricConfig(
                store=args.store,
                lease_ttl=args.lease_ttl if args.lease_ttl is not None else 30.0,
                lease_size=args.lease_size if args.lease_size is not None else 4,
                telemetry_interval=(
                    args.telemetry_interval if args.telemetry_interval is not None else 1.0
                ),
                stall_window=args.stall_window if args.stall_window is not None else 15.0,
                store_retries=(
                    args.store_retries if args.store_retries is not None else 0
                ),
                store_backoff=(
                    args.store_backoff if args.store_backoff is not None else 0.05
                ),
            )
        )
    return spec


def cmd_campaign(args: argparse.Namespace) -> int:
    problem = _validate_campaign_flags(args)
    if problem is not None:
        args.parser.error(problem)  # exits with status 2, argparse-style
    try:
        spec = _spec_from_args(args)
    except (OSError, ValueError, TypeError) as exc:
        sys.stderr.write(f"error: cannot build campaign spec: {exc}\n")
        return 2
    if args.spec_out:
        with open(args.spec_out, "w", encoding="utf-8") as fh:
            json.dump(spec.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        sys.stderr.write(f"campaign spec written to {args.spec_out}\n")
    if args.dry_run:
        # the reproducibility artifact on stdout; identity on stderr
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        sys.stderr.write(f"spec fingerprint: {spec.fingerprint()}\n")
        return 0
    started = time.time()

    def progress(stage: str, done: int, total: int) -> None:
        if done == total or done % 50 == 0:
            sys.stderr.write(f"\r[{time.time() - started:6.1f}s] {stage}: {done}/{total}  ")
            sys.stderr.flush()

    from repro.fabric.coordinator import FabricMismatch

    try:
        result = run_campaign(spec, progress=progress)
    except (JournalMismatch, FabricMismatch) as exc:
        sys.stderr.write(f"\nerror: {exc}\n")
        return 2
    sys.stderr.write("\n")
    print(render_table1([result]))
    print()
    print(render_attack_clusters(result))
    print()
    print(render_campaign_health(result))
    if result.flaky:
        print()
        print("Flaky detections (did not reproduce in the confirm stage)")
        print(render_flaky_detections(result))
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(result.metrics, fh, indent=2, sort_keys=True)
            fh.write("\n")
        sys.stderr.write(f"metrics snapshot written to {args.metrics_out}\n")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant campaign service (``repro serve``)."""
    from repro.service.app import CampaignService
    from repro.service.http import serve
    from repro.service.quota import TenantQuota, parse_quota_flag

    try:
        quotas = parse_quota_flag(args.quota) if args.quota else {}
        default_quota = TenantQuota(
            max_concurrent_campaigns=args.default_max_campaigns,
            max_leased_units=args.default_max_units,
        )
    except ValueError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2
    service = CampaignService(
        args.store,
        quotas=quotas,
        default_quota=default_quota,
        max_total_campaigns=args.max_campaigns,
        quarantine_after=args.quarantine_after,
        store_retries=args.store_retries,
        store_backoff=args.store_backoff,
    )
    # service HA: campaigns a previous (killed) serve process left running
    # on the store get their drive loops back before we accept traffic
    for record in service.reattach_detached():
        sys.stderr.write(
            f"re-attached campaign {record['campaign_id']} "
            f"(tenant {record['tenant']})\n"
        )
    serve(service, host=args.host, port=args.port)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a campaign to a running service (``repro submit``)."""
    from repro.service.client import ServiceClient, ServiceHTTPError

    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    else:
        spec = CampaignSpec(
            testbed=_testbed_from_args(args),
            sample_every=args.sample_every,
            workers=args.workers,
        )
        document = spec.to_dict()
    if args.tenant is not None:
        document["tenant"] = args.tenant

    client = ServiceClient(args.host, args.port)
    try:
        submitted = client.submit(document)
    except ServiceHTTPError as exc:
        sys.stderr.write(f"error: submit rejected: {exc}\n")
        return 2 if exc.status == 422 else 3
    except OSError as exc:
        sys.stderr.write(f"error: cannot reach service at "
                         f"{args.host}:{args.port}: {exc}\n")
        return 3
    campaign_id = submitted["campaign_id"]
    sys.stderr.write(f"campaign {campaign_id} submitted "
                     f"(tenant {submitted.get('tenant')})\n")
    if not args.wait:
        print(json.dumps(submitted, sort_keys=True))
        return 0
    try:
        final = client.wait(campaign_id, timeout=args.timeout)
    except TimeoutError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 3
    sys.stderr.write(f"campaign {campaign_id} finished: {final.get('status')}\n")
    if args.report_out or final.get("status") == "complete":
        try:
            report = client.report(campaign_id)
        except ServiceHTTPError as exc:
            sys.stderr.write(f"error: report unavailable: {exc}\n")
            print(json.dumps(final, sort_keys=True))
            return 1
        if args.report_out:
            with open(args.report_out, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
            sys.stderr.write(f"report written to {args.report_out}\n")
        print(json.dumps(report, sort_keys=True))
    else:
        print(json.dumps(final, sort_keys=True))
    return 0 if final.get("status") == "complete" else 1


def cmd_worker(args: argparse.Namespace) -> int:
    """Serve leased fabric work units (``repro worker --store ...``)."""
    from repro.fabric.store import store_for
    from repro.fabric.worker import FabricWorker

    obs = None
    if args.trace_dir or args.metrics_out:
        obs = ObsConfig(trace_dir=args.trace_dir, metrics=args.metrics_out is not None)
    store = store_for(
        args.store, retries=args.store_retries, backoff=args.store_backoff
    )
    worker = FabricWorker(
        store, workers=args.workers, obs=obs, poll_interval=args.poll
    )
    sys.stderr.write(f"worker {worker.worker_id} serving store {args.store}\n")
    try:
        stats = worker.run(
            once=args.once,
            idle_exit=args.idle_exit,
            manifest_timeout=args.manifest_timeout,
        )
    finally:
        store.close()
    if args.metrics_out:
        from repro.obs.metrics import METRICS

        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(METRICS.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    sys.stderr.write(
        f"worker {worker.worker_id} done: "
        + " ".join(f"{k}={v}" for k, v in sorted(stats.items()))
        + "\n"
    )
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live fleet view of a fabric campaign (``repro top --store ...``).

    Reads only the shared artifact store — no shared trace directory, no
    connection to any worker — so it works from any host that can see the
    store.  The refresh loop exits on its own once the campaign manifest
    goes complete/failed; ``--once`` renders one frame for scripts and CI.
    """
    from repro.fabric.store import StoreCorrupt, scoped_store, store_for
    from repro.obs.fleet import FleetAggregator, fleet_overview

    store = store_for(
        args.store, retries=args.store_retries, backoff=args.store_backoff
    )
    view = scoped_store(store, args.campaign)
    try:
        # one long-lived aggregator, so no-progress straggler detection
        # works across refreshes (heartbeat stalls need only one frame)
        aggregator = FleetAggregator(view, stall_window=args.stall_window)
        while True:
            try:
                overview = fleet_overview(
                    view, stall_window=args.stall_window, aggregator=aggregator
                )
            except (OSError, StoreCorrupt) as exc:
                # the store blinked (outage, torn record mid-rewrite):
                # keep the view alive instead of tracebacking — the next
                # frame usually reads clean
                sys.stderr.write(f"warning: store unreadable this frame: {exc}\n")
                if args.once:
                    return 1
                try:
                    time.sleep(args.interval)
                except KeyboardInterrupt:
                    return 0
                continue
            if args.json:
                print(json.dumps(overview, sort_keys=True))
            else:
                if not args.once and sys.stdout.isatty():
                    sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
                print(render_fleet(overview))
                torn = overview.get("torn_records", 0)
                if torn:
                    print(f"warning: skipped {torn} torn telemetry record(s)")
            sys.stdout.flush()
            if args.once:
                return 0
            status = (overview.get("manifest") or {}).get("status")
            if status in ("complete", "failed", "cancelled"):
                return 0
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0
            if not sys.stdout.isatty() and not args.json:
                print()
    finally:
        store.close()


def _strategy_token(value: str) -> Optional[int]:
    """``--strategy`` value: a strategy id, or ``baseline`` (-> ``None``)
    for the non-attack baseline runs (which carry no strategy id)."""
    if value.lower() == "baseline":
        return None
    return int(value)


def cmd_report(args: argparse.Namespace) -> int:
    """Render a recorded campaign's telemetry (``repro report``).

    Sources compose: a trace directory gives run spans/timelines, a
    metrics snapshot gives the counter/histogram tables, and ``--store``
    reads the fleet telemetry namespace of a fabric store directly (no
    shared filesystem with the workers needed) — the merged cross-host
    registry stands in for the metrics snapshot when none is given.
    """
    if not args.trace_dir and not args.store:
        sys.stderr.write("error: report needs a TRACE_DIR and/or --store\n")
        return 2
    events: List[dict] = []
    if args.trace_dir:
        try:
            events = load_trace_dir(args.trace_dir)
        except FileNotFoundError as exc:
            sys.stderr.write(f"error: {exc}\n")
            return 2
    snapshot = {}
    if args.metrics:
        try:
            snapshot = load_metrics_snapshot(args.metrics)
        except (OSError, ValueError) as exc:
            sys.stderr.write(f"error: cannot read metrics snapshot: {exc}\n")
            return 2
    overview = None
    if args.store:
        from repro.fabric.store import scoped_store, store_for
        from repro.obs.fleet import FleetAggregator, fleet_overview

        store = store_for(args.store)
        view = scoped_store(store, args.campaign)
        try:
            overview = fleet_overview(view)
            if not snapshot:
                # every participant publishes its cumulative registry, so
                # the merge covers coordinator + every worker host
                snapshot = FleetAggregator(view).merged_metrics(
                    include_roles=("worker", "coordinator")
                )
        finally:
            store.close()

    if overview is not None:
        print("Fleet")
        print(render_fleet(overview))
        print()
    runs = run_spans(events)
    print(render_throughput_summary(snapshot, runs))

    if any(key.startswith("snap.") for key in (snapshot.get("counters") or {})):
        print()
        print("Snapshots")
        print(render_snapshot_summary(snapshot))

    if args.trace_dir:
        print()
        print("Slowest runs")
        print(render_slowest_runs(runs, args.slowest))

        if args.strategy is not None:
            shown_ids: List[Optional[int]] = list(args.strategy)
        else:
            # default view: the baseline timeline (when traced) plus the
            # first few strategies
            shown_ids = [None] if has_baseline(events) else []
            shown_ids += list(strategy_ids(events))[: args.timelines]
        for sid in shown_ids:
            print()
            print(render_strategy_timeline(sid, strategy_timeline(events, sid)))

        if args.strategy:
            first = args.strategy[0]
            transitions = (
                transition_events(events, stage="baseline")
                if first is None
                else transition_events(events, first)
            )
        else:
            transitions = transition_events(events)
        print()
        print("State-transition audit log")
        print(render_transition_log(transitions, args.transitions))

        kills = supervisor_kills(events)
        quarantines = quarantine_events(events)
        if kills or quarantines:
            print()
            print("Supervision")
            print(render_supervision_report(kills, quarantines))

        verdicts = confirm_verdicts(events)
        if verdicts:
            print()
            print("Confirm verdicts")
            print(render_verdicts(verdicts, baseline_stats(events)))

    if snapshot:
        print()
        print(render_metrics_summary(snapshot))

    if args.export_prom:
        from repro.obs.fleet import prometheus_text

        if not snapshot:
            sys.stderr.write(
                "error: --export-prom needs metrics (a METRICS snapshot "
                "or --store with telemetry)\n"
            )
            return 2
        with open(args.export_prom, "w", encoding="utf-8") as fh:
            fh.write(prometheus_text(snapshot))
        sys.stderr.write(f"prometheus metrics written to {args.export_prom}\n")
    return 0


def cmd_searchspace(args: argparse.Namespace) -> int:
    if args.protocol == "tcp":
        generator = StrategyGenerator("tcp", TCP_FORMAT, tcp_state_machine())
    else:
        generator = StrategyGenerator("dccp", DCCP_FORMAT, dccp_state_machine())
    baseline_run = Executor(_testbed_from_args(args)).run(None)
    print(render_searchspace(compare_injection_models(generator, baseline_run)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SNAKE: state-machine-guided attack discovery (DSN 2015 reproduction)",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log INFO (-v) or DEBUG (-vv) to stderr")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only log errors")
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("variants", help="list implementation variants")
    sub.set_defaults(handler=cmd_variants)

    sub = subparsers.add_parser("baseline", help="run the non-attack baseline")
    _add_target_arguments(sub)
    sub.set_defaults(handler=cmd_baseline)

    sub = subparsers.add_parser("campaign", help="run a full attack-finding campaign")
    _add_target_arguments(sub)
    sub.add_argument("--sample-every", type=_positive_int, default=25,
                     help="execute 1 in N strategies (1 = full sweep)")
    sub.add_argument("--workers", type=_positive_int, default=1)
    sub.add_argument("--retries", type=_nonnegative_int, default=1,
                     help="retries (with derived seeds) before a failed/"
                          "timed-out run is classified as an error")
    sub.add_argument("--retry-backoff", type=_nonnegative_float, default=0.0,
                     help="base seconds slept before a retry, doubled per attempt")
    sub.add_argument("--run-budget", type=_positive_float, default=None,
                     help="wall-clock watchdog: real seconds allowed per simulation run")
    sub.add_argument("--max-events", type=_positive_int, default=None,
                     help="event watchdog: simulator events allowed per run")
    sub.add_argument("--checkpoint", metavar="JOURNAL", default=None,
                     help="journal completed runs to this JSONL file as they finish")
    sub.add_argument("--resume", metavar="JOURNAL", nargs="?", const=True, default=None,
                     help="resume from (and keep appending to) an existing journal, "
                          "skipping already-completed strategies (refused if the "
                          "journal was written under a different spec); with no "
                          "value, resumes the journal named by --checkpoint")
    sub.add_argument("--cache-dir", metavar="DIR", default=None,
                     help="content-addressed run cache: restore any run already "
                          "on disk instead of simulating it, persist fresh runs")
    sub.add_argument("--no-cache", action="store_true",
                     help="ignore any cache directory (including one from --spec)")
    sub.add_argument("--batch-size", type=_positive_int, default=8,
                     help="strategies dispatched per worker round-trip")
    sub.add_argument("--no-supervision", action="store_true",
                     help="run under the plain worker pool instead of the "
                          "supervised (hang-proof) one")
    sub.add_argument("--slot-budget", type=_positive_float, default=None,
                     help="supervisor deadline: wall seconds a worker may spend "
                          "on one strategy before it is killed and respawned "
                          "(default: derived from --run-budget)")
    sub.add_argument("--quarantine-after", type=_positive_int, default=None,
                     help="worker kills/deaths a strategy may cause before it "
                          f"is quarantined (default {DEFAULT_QUARANTINE_AFTER})")
    sub.add_argument("--max-tasks-per-child", type=_positive_int, default=None,
                     help="recycle each worker after this many strategies")
    sub.add_argument("--baseline-runs", type=_positive_int, default=2,
                     help="no-attack baseline replicas (>= 2 gives the detector "
                          "a noise estimate)")
    sub.add_argument("--noise-sigmas", type=_nonnegative_float, default=3.0,
                     help="detections must clear this many baseline standard "
                          "deviations (0 disables the noise band)")
    sub.add_argument("--spec", metavar="JSON", default=None,
                     help="load the whole campaign from a spec file (see --spec-out); "
                          "overrides the per-field flags")
    sub.add_argument("--spec-out", metavar="JSON", default=None,
                     help="write the resolved campaign spec to this file")
    sub.add_argument("--dry-run", action="store_true",
                     help="print the resolved spec (and its fingerprint) "
                          "without running the campaign")
    sub.add_argument("--trace-dir", metavar="DIR", default=None,
                     help="record structured JSONL event traces into this directory "
                          "(one file per worker process)")
    sub.add_argument("--metrics-out", metavar="JSON", default=None,
                     help="collect campaign metrics (merged across workers) and "
                          "write the snapshot to this JSON file")
    sub.add_argument("--profile", metavar="DIR", default=None,
                     help="cProfile every run; keep .pstats for the N slowest")
    sub.add_argument("--profile-keep", type=int, default=5,
                     help="how many slowest-run profiles to keep (with --profile)")
    sub.add_argument("--snapshots", action="store_true",
                     help="amortize shared simulation prefixes: snapshot the "
                          "simulator world at each strategy's trigger state and "
                          "fork attack tails from it instead of replaying the "
                          "prefix (fingerprint-neutral; results are identical)")
    sub.add_argument("--no-snapshots", action="store_true",
                     help="force snapshotting off (including one enabled by --spec)")
    sub.add_argument("--snap-verify-fraction", type=_fraction, default=None,
                     help="determinism guard: fraction of forked runs also "
                          "executed in full and compared (default 0.05; "
                          "divergence disables snapshotting for that prefix)")
    sub.add_argument("--snap-store", metavar="STORE", default=None,
                     help="persist snapshots to this artifact store (a directory, "
                          "or sqlite:PATH / *.db) for cross-process reuse")
    sub.add_argument("--fabric", action="store_true",
                     help="distribute the sweep over a shared artifact store; "
                          "repro worker processes pointed at the same --store "
                          "help execute it (requires --store)")
    sub.add_argument("--store", metavar="URL", default=None,
                     help="shared artifact store: dir://PATH, sqlite://PATH or "
                          "memory://NAME (bare paths deprecated; with --fabric)")
    sub.add_argument("--lease-ttl", type=_positive_float, default=None,
                     help="seconds a claimed work unit may go without a heartbeat "
                          "before other workers may reclaim it (default 30)")
    sub.add_argument("--lease-size", type=_positive_int, default=None,
                     help="strategies per claimable work unit (default 4)")
    sub.add_argument("--telemetry-interval", type=_nonnegative_float, default=None,
                     help="seconds between fleet status publishes per participant "
                          "(default 1; 0 disables the telemetry plane; with --fabric)")
    sub.add_argument("--stall-window", type=_positive_float, default=None,
                     help="no heartbeat or no unit progress for this many seconds "
                          "flags a worker as a straggler (default 15; with --fabric)")
    sub.add_argument("--store-retries", type=_nonnegative_int, default=None,
                     help="retry transient store faults this many extra times per "
                          "operation, with exponential backoff and a circuit "
                          "breaker (default 0 = no retries; with --fabric)")
    sub.add_argument("--store-backoff", type=_nonnegative_float, default=None,
                     help="base seconds for store-retry exponential backoff "
                          "(default 0.05; with --fabric)")
    sub.set_defaults(handler=cmd_campaign, parser=sub)

    sub = subparsers.add_parser(
        "serve",
        help="run the multi-tenant campaign service (HTTP control plane)",
        description="An asyncio HTTP control plane multiplexing N concurrent "
                    "campaigns on one shared artifact store: POST /campaigns "
                    "submits a CampaignSpec JSON, GET /campaigns/{id} reports "
                    "status + fleet health, POST /campaigns/{id}/cancel stops "
                    "one, GET /campaigns/{id}/report returns the finished "
                    "report.  Point repro worker processes at the same store "
                    "to add execution capacity.",
    )
    sub.add_argument("--store", metavar="URL", required=True,
                     help="shared artifact store: dir://PATH, sqlite://PATH or "
                          "memory://NAME (bare paths deprecated)")
    sub.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    sub.add_argument("--port", type=_nonnegative_int, default=8642,
                     help="bind port (default 8642; 0 = ephemeral)")
    sub.add_argument("--quota", metavar="SPEC", default=None,
                     help="per-tenant quotas: tenant=campaigns:units[,...] "
                          "(e.g. alice=3:16,bob=1:4)")
    sub.add_argument("--default-max-campaigns", type=_positive_int, default=2,
                     help="concurrent campaigns per tenant without an explicit "
                          "quota (default 2)")
    sub.add_argument("--default-max-units", type=_positive_int, default=8,
                     help="live leased units per tenant without an explicit "
                          "quota (default 8)")
    sub.add_argument("--max-campaigns", type=_positive_int, default=8,
                     help="service-wide concurrent-campaign ceiling (default 8)")
    sub.add_argument("--quarantine-after", type=_positive_int, default=3,
                     help="consecutive failures before a spec fingerprint is "
                          "quarantined (default 3)")
    sub.add_argument("--store-retries", type=_nonnegative_int, default=0,
                     help="retry transient store faults this many extra times per "
                          "operation, with exponential backoff and a circuit "
                          "breaker (default 0 = no retries)")
    sub.add_argument("--store-backoff", type=_nonnegative_float, default=0.05,
                     help="base seconds for store-retry exponential backoff "
                          "(default 0.05)")
    sub.set_defaults(handler=cmd_serve)

    sub = subparsers.add_parser(
        "submit",
        help="submit a campaign to a running service over HTTP",
        description="POSTs a CampaignSpec to a repro serve control plane and "
                    "prints the submission (or, with --wait, the final status "
                    "and report) as JSON on stdout.",
    )
    _add_target_arguments(sub)
    sub.add_argument("--spec", metavar="JSON", default=None,
                     help="submit this spec file (see campaign --spec-out); "
                          "overrides the per-field flags")
    sub.add_argument("--tenant", default=None,
                     help="tenant the campaign is accounted under "
                          "(default: the spec's tenant, or 'default')")
    sub.add_argument("--sample-every", type=_positive_int, default=25,
                     help="execute 1 in N strategies (without --spec)")
    sub.add_argument("--workers", type=_positive_int, default=None,
                     help="worker-pool size hint for the coordinator "
                          "(without --spec)")
    sub.add_argument("--host", default="127.0.0.1",
                     help="service address (default 127.0.0.1)")
    sub.add_argument("--port", type=_nonnegative_int, default=8642,
                     help="service port (default 8642)")
    sub.add_argument("--wait", action="store_true",
                     help="poll until the campaign finishes; exit 0 only on "
                          "'complete'")
    sub.add_argument("--timeout", type=_positive_float, default=600.0,
                     help="--wait deadline in seconds (default 600)")
    sub.add_argument("--report-out", metavar="JSON", default=None,
                     help="with --wait: also write the campaign report here")
    sub.set_defaults(handler=cmd_submit)

    sub = subparsers.add_parser(
        "worker",
        help="serve leased work units from a shared fabric store",
        description="Waits for a campaign manifest on the shared store, then "
                    "claims, executes and commits leased work units until the "
                    "campaign completes.  Start any number of these (on any "
                    "host sharing the store) next to a campaign run with "
                    "--fabric --store pointing at the same store.",
    )
    sub.add_argument("--store", metavar="URL", required=True,
                     help="shared artifact store: dir://PATH, sqlite://PATH or "
                          "memory://NAME (bare paths deprecated)")
    sub.add_argument("--workers", type=_positive_int, default=1,
                     help="local worker-pool processes for executing unit slots")
    sub.add_argument("--poll", type=_positive_float, default=0.2,
                     help="seconds between polls for a manifest / claimable work")
    sub.add_argument("--once", action="store_true",
                     help="serve at most one work unit, then exit")
    sub.add_argument("--idle-exit", type=_positive_float, default=None,
                     help="exit after this many seconds with no claimable work")
    sub.add_argument("--manifest-timeout", type=_positive_float, default=None,
                     help="give up if no campaign manifest appears in time "
                          "(default: wait forever)")
    sub.add_argument("--trace-dir", metavar="DIR", default=None,
                     help="record this worker's JSONL event traces here")
    sub.add_argument("--metrics-out", metavar="JSON", default=None,
                     help="write this worker's metrics snapshot here on exit")
    sub.add_argument("--store-retries", type=_nonnegative_int, default=0,
                     help="retry transient store faults this many extra times per "
                          "operation, with exponential backoff and a circuit "
                          "breaker (default 0 = no retries)")
    sub.add_argument("--store-backoff", type=_nonnegative_float, default=0.05,
                     help="base seconds for store-retry exponential backoff "
                          "(default 0.05)")
    sub.set_defaults(handler=cmd_worker)

    sub = subparsers.add_parser(
        "top",
        help="live fleet view of a fabric campaign",
        description="Tails the telemetry namespace of a shared fabric store "
                    "and renders workers (heartbeat age, progress, events/sec, "
                    "stragglers), lease states, per-stage completion and an "
                    "ETA.  Exits when the campaign manifest goes "
                    "complete/failed.",
    )
    sub.add_argument("--store", metavar="URL", required=True,
                     help="shared artifact store: dir://PATH, sqlite://PATH or "
                          "memory://NAME (bare paths deprecated)")
    sub.add_argument("--campaign", metavar="ID", default=None,
                     help="watch one service campaign (campaigns/<ID>/... scope) "
                          "instead of the legacy root campaign")
    sub.add_argument("--interval", type=_positive_float, default=2.0,
                     help="seconds between refreshes (default 2)")
    sub.add_argument("--once", action="store_true",
                     help="render one frame and exit (for scripts and CI)")
    sub.add_argument("--json", action="store_true",
                     help="emit the overview as one JSON document per frame")
    sub.add_argument("--stall-window", type=_positive_float, default=15.0,
                     help="heartbeat/progress staleness that marks a worker "
                          "as a straggler (default 15)")
    sub.add_argument("--store-retries", type=_nonnegative_int, default=0,
                     help="retry transient store faults this many extra times per "
                          "read, with exponential backoff (default 0 = no retries)")
    sub.add_argument("--store-backoff", type=_nonnegative_float, default=0.05,
                     help="base seconds for store-retry exponential backoff "
                          "(default 0.05)")
    sub.set_defaults(handler=cmd_top)

    sub = subparsers.add_parser(
        "report", help="inspect a recorded campaign's telemetry"
    )
    sub.add_argument("trace_dir", metavar="TRACE_DIR", nargs="?", default=None,
                     help="trace directory written by campaign --trace-dir "
                          "(optional with --store)")
    sub.add_argument("metrics", metavar="METRICS", nargs="?", default=None,
                     help="metrics snapshot written by campaign --metrics-out")
    sub.add_argument("--strategy", type=_strategy_token, action="append", default=None,
                     help="show the timeline for this strategy id, or 'baseline' "
                          "for the non-attack baseline runs (repeatable); also "
                          "narrows the transition log to the first value given")
    sub.add_argument("--slowest", type=int, default=10,
                     help="rows in the slowest-runs table")
    sub.add_argument("--timelines", type=int, default=3,
                     help="without --strategy: how many strategy timelines to show")
    sub.add_argument("--transitions", type=int, default=40,
                     help="max rows in the state-transition audit log")
    sub.add_argument("--store", metavar="URL", default=None,
                     help="also read fleet telemetry from this fabric store "
                          "(dir://PATH, sqlite://PATH or memory://NAME; merged "
                          "cross-host metrics stand in for METRICS when no "
                          "snapshot file is given)")
    sub.add_argument("--campaign", metavar="ID", default=None,
                     help="report on one service campaign (campaigns/<ID>/... "
                          "scope) instead of the legacy root campaign")
    sub.add_argument("--export-prom", metavar="FILE", default=None,
                     help="write the metrics snapshot in Prometheus text "
                          "exposition format to FILE")
    sub.set_defaults(handler=cmd_report)

    sub = subparsers.add_parser("searchspace", help="Section VI-C comparison")
    _add_target_arguments(sub)
    sub.set_defaults(handler=cmd_searchspace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
