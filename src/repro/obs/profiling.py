"""Opt-in per-run cProfile dumps, pruned to the slowest runs.

The slowest run can't be known in advance, so every run under
``--profile`` dumps a ``.pstats`` file named after its run id; after the
campaign the controller calls :func:`prune_profiles` with the ids of the N
slowest runs and everything else is deleted.  Inspect survivors with::

    python -m pstats t/profiles/sweep-1342-a0.pstats
"""

from __future__ import annotations

import cProfile
import logging
import os
from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Set

log = logging.getLogger("repro.obs")

PROFILE_SUFFIX = ".pstats"


def _profile_path(profile_dir: str, run_id: str) -> str:
    safe = run_id.replace(os.sep, "_") or "run"
    return os.path.join(profile_dir, safe + PROFILE_SUFFIX)


@contextmanager
def profile_run(profile_dir: Optional[str], run_id: str) -> Iterator[None]:
    """Profile the block and dump stats to ``<dir>/<run_id>.pstats``.

    A no-op context manager when ``profile_dir`` is ``None``.
    """
    if not profile_dir:
        yield
        return
    os.makedirs(profile_dir, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(_profile_path(profile_dir, run_id))


def prune_profiles(profile_dir: str, keep_run_ids: Iterable[str]) -> int:
    """Delete every profile except those named by ``keep_run_ids``.

    Returns the number of files removed.  Missing directories are fine
    (profiling may have produced nothing).
    """
    if not os.path.isdir(profile_dir):
        return 0
    keep: Set[str] = {
        os.path.basename(_profile_path(profile_dir, run_id)) for run_id in keep_run_ids
    }
    removed = 0
    for name in os.listdir(profile_dir):
        if name.endswith(PROFILE_SUFFIX) and name not in keep:
            os.unlink(os.path.join(profile_dir, name))
            removed += 1
    if removed:
        log.info("pruned %d profile(s) from %s", removed, profile_dir)
    return removed
