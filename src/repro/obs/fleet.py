"""The fleet telemetry plane: store-backed worker health and live metrics.

PR 6 made campaigns distributed, but observability stayed single-host:
traces land in per-pid files and metrics merge only inside one fork pool.
This module closes the gap using the same shared
:class:`~repro.fabric.store.ArtifactStore` the fabric already trusts for
leases and results:

* :class:`FleetPublisher` — every participant (each ``repro worker`` and
  the coordinator itself) periodically ``put``s one compact *status
  record* into the ``telemetry`` namespace: host, pid, in-flight unit,
  units/commits done, recent simulator events/sec, and a full
  metrics-registry snapshot.  ``put`` is atomic on both store backends, so
  readers always see a whole record.
* :class:`FleetAggregator` — merges those records into fleet-wide
  metrics, and flags *stragglers*: a participant whose heartbeat stopped
  (SIGKILL, partition) or that keeps heartbeating without making unit
  progress inside a configurable stall window.  Each new straggler emits
  a ``fleet.straggler`` trace event and bumps the ``fleet.stragglers``
  counter.
* :func:`fleet_overview` — the one-shot snapshot behind ``repro top`` and
  ``repro report --store``: workers with heartbeat ages, lease-state
  counts, per-stage completion, fleet events/sec, and an ETA.
* :func:`prometheus_text` — renders any metrics snapshot (including the
  merged cross-host one) in the Prometheus text exposition format for
  ``repro report --export-prom``.

Status record schema (one JSON document per participant, last write
wins)::

    {"worker_id": "hostA-4242-c0ffee", "host": "hostA", "pid": 4242,
     "role": "worker",            # or "coordinator"
     "spec_fingerprint": "...",   # campaign the record belongs to
     "started_at": 1722890000.0, "updated_at": 1722890012.5,
     "interval": 1.0,             # publisher cadence (for staleness math)
     "phase": "executing",        # idle | executing | coordinating | exited
     "unit": "ab12..",            # in-flight unit id (None when idle)
     "stage": "sweep", "leases_held": 1,
     "units_done": 3, "runs_done": 12, "commits": 12, "duplicates": 0,
     "sim_events": 950123, "events_per_sec": 118000.0,
     "metrics": {...}}            # cumulative MetricsRegistry snapshot

Records are *cumulative*, so the aggregator folds at most one snapshot
per participant and counters never double-count.  Everything here is
read/write through the store interface only — no shared filesystem or
trace directory is required between hosts.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.fabric.leases import (
    NS_LEASES,
    NS_UNITS,
    STATE_DONE,
    STATE_LEASED,
    STATE_PENDING,
)
from repro.fabric.store import ArtifactStore, load_statuses, publish_status
from repro.obs.bus import BUS
from repro.obs.metrics import METRICS, merge_snapshots

#: status-record phases
PHASE_IDLE = "idle"
PHASE_EXECUTING = "executing"
PHASE_COORDINATING = "coordinating"
PHASE_EXITED = "exited"

#: participant roles
ROLE_WORKER = "worker"
ROLE_COORDINATOR = "coordinator"

#: default publisher cadence (seconds) and straggler stall window
DEFAULT_TELEMETRY_INTERVAL = 1.0
DEFAULT_STALL_WINDOW = 15.0


class FleetPublisher:
    """Publishes one participant's status record into the shared store.

    ``publish`` is rate-limited to ``interval`` seconds (``force=True``
    bypasses the limit for state transitions: unit claimed, unit done,
    clean exit) and never raises — a telemetry hiccup must not take down
    the worker it describes.
    """

    def __init__(
        self,
        store: ArtifactStore,
        worker_id: str,
        role: str = ROLE_WORKER,
        interval: float = DEFAULT_TELEMETRY_INTERVAL,
        spec_fingerprint: Optional[str] = None,
    ):
        self.store = store
        self.worker_id = worker_id
        self.role = role
        self.interval = max(interval, 0.05)
        self.spec_fingerprint = spec_fingerprint
        self.host = socket.gethostname()
        self.started_at = time.time()
        self.published = 0
        #: publishes swallowed because the store (or a torn snapshot)
        #: misbehaved — telemetry degrades, the worker keeps running
        self.dropped = 0
        self._lock = threading.Lock()
        self._last_publish = 0.0
        #: (timestamp, cumulative sim events) of the previous publish, for
        #: the recent events/sec estimate
        self._rate_anchor: Optional[tuple] = None
        self._last_rate = 0.0

    # ------------------------------------------------------------------
    def _events_per_sec(self, now: float, sim_events: int) -> float:
        if self._rate_anchor is None:
            self._rate_anchor = (now, sim_events)
            return 0.0
        anchor_ts, anchor_events = self._rate_anchor
        elapsed = now - anchor_ts
        if elapsed < self.interval / 2:
            return self._last_rate  # too soon for a stable estimate
        self._rate_anchor = (now, sim_events)
        self._last_rate = max(0.0, (sim_events - anchor_events) / elapsed)
        return self._last_rate

    def publish(
        self,
        phase: str,
        unit: Optional[str] = None,
        stage: Optional[str] = None,
        stats: Optional[Dict[str, int]] = None,
        force: bool = False,
    ) -> bool:
        """Publish a status record; ``True`` iff a record was written.

        Safe to call from several threads (the worker's lease-heartbeat
        thread and its main loop both publish) and never raises — even a
        metrics snapshot torn by a concurrent merge only costs this one
        heartbeat.
        """
        with self._lock:
            now = time.time()
            if not force and now - self._last_publish < self.interval:
                return False
            stats = stats or {}
            try:
                metrics = METRICS.snapshot() if METRICS.enabled else {}
                sim_events = int(metrics.get("counters", {}).get("sim.events", 0))
                record: Dict[str, Any] = {
                    "worker_id": self.worker_id,
                    "host": self.host,
                    "pid": os.getpid(),
                    "role": self.role,
                    "spec_fingerprint": self.spec_fingerprint,
                    "started_at": round(self.started_at, 6),
                    "updated_at": round(now, 6),
                    "interval": self.interval,
                    "phase": phase,
                    "unit": unit,
                    "stage": stage,
                    "leases_held": 1 if phase == PHASE_EXECUTING and unit is not None else 0,
                    "units_done": int(stats.get("units", 0)),
                    "runs_done": int(stats.get("runs", 0)),
                    "commits": int(stats.get("commits", 0)),
                    "duplicates": int(stats.get("duplicates", 0)),
                    "sim_events": sim_events,
                    "events_per_sec": round(self._events_per_sec(now, sim_events), 1),
                    "metrics": metrics,
                }
                publish_status(self.store, self.worker_id, record)
            except Exception:  # noqa: BLE001 - telemetry must never kill its worker
                self.dropped += 1
                if METRICS.enabled:
                    METRICS.inc("fleet.publish_dropped")
                return False
            self._last_publish = now
            self.published += 1
            return True


class FleetAggregator:
    """Reads every status record and derives fleet health.

    The aggregator is *stateful across polls*: straggler detection
    compares a participant's progress counters between polls, and each
    participant is flagged once per stall episode (``fleet.straggler``
    trace event + ``fleet.stragglers`` counter), then cleared when it
    recovers.  A single poll from a fresh aggregator (``repro top
    --once``) still detects heartbeat-based stragglers — a dead worker's
    ``updated_at`` speaks for itself.
    """

    def __init__(
        self,
        store: ArtifactStore,
        stall_window: float = DEFAULT_STALL_WINDOW,
        spec_fingerprint: Optional[str] = None,
    ):
        if stall_window <= 0:
            raise ValueError("stall_window must be positive")
        self.store = store
        self.stall_window = stall_window
        self.spec_fingerprint = spec_fingerprint
        #: worker_id -> (progress tuple, first time it was seen unchanged)
        self._progress: Dict[str, tuple] = {}
        #: worker ids currently flagged as straggling
        self._straggling: set = set()
        #: total stall episodes flagged over this aggregator's lifetime
        self.stragglers_flagged = 0
        #: torn status records skipped on the most recent read
        self.torn_records = 0

    # ------------------------------------------------------------------
    def statuses(self) -> Dict[str, Dict[str, Any]]:
        """Readable status records, filtered to this campaign when known.

        Torn records (publisher killed mid-rewrite) are skipped and
        counted in :attr:`torn_records`, never raised — the health table
        stays renderable through a partial store."""
        skipped: List[str] = []
        records = load_statuses(self.store, skipped=skipped)
        self.torn_records = len(skipped)
        if self.spec_fingerprint is None:
            return records
        return {
            worker_id: record
            for worker_id, record in records.items()
            if record.get("spec_fingerprint") in (None, self.spec_fingerprint)
        }

    @staticmethod
    def _progress_key(record: Dict[str, Any]) -> tuple:
        return (
            record.get("units_done", 0),
            record.get("commits", 0) + record.get("duplicates", 0),
            record.get("sim_events", 0),
        )

    def _check_straggler(
        self, worker_id: str, record: Dict[str, Any], now: float
    ) -> Optional[str]:
        """The stall reason for this participant, or ``None`` if healthy."""
        if record.get("phase") == PHASE_EXITED:
            self._straggling.discard(worker_id)
            self._progress.pop(worker_id, None)
            return None
        heartbeat_age = now - float(record.get("updated_at", 0.0))
        if heartbeat_age > self.stall_window:
            return "no-heartbeat"
        key = self._progress_key(record)
        previous = self._progress.get(worker_id)
        if previous is None or previous[0] != key or record.get("phase") != PHASE_EXECUTING:
            # progressed, or not executing: (re)anchor the stall clock
            self._progress[worker_id] = (key, now)
            return None
        if now - previous[1] > self.stall_window:
            return "no-progress"
        return None

    def poll(self, now: Optional[float] = None) -> Dict[str, Any]:
        """One aggregation pass: per-worker health plus fleet rollups."""
        now = time.time() if now is None else now
        workers: List[Dict[str, Any]] = []
        stragglers: List[str] = []
        fleet_rate = 0.0
        for worker_id, record in sorted(self.statuses().items()):
            heartbeat_age = max(0.0, now - float(record.get("updated_at", 0.0)))
            reason = self._check_straggler(worker_id, record, now)
            if reason is not None:
                stragglers.append(worker_id)
                if worker_id not in self._straggling:
                    self._straggling.add(worker_id)
                    self.stragglers_flagged += 1
                    if METRICS.enabled:
                        METRICS.inc("fleet.stragglers")
                    BUS.emit(
                        "fleet.straggler",
                        worker=worker_id,
                        host=record.get("host"),
                        reason=reason,
                        heartbeat_age=round(heartbeat_age, 3),
                        unit=record.get("unit"),
                    )
            else:
                self._straggling.discard(worker_id)
            # a silent worker's self-reported rate is history, not throughput
            interval = float(record.get("interval", DEFAULT_TELEMETRY_INTERVAL))
            rate = float(record.get("events_per_sec", 0.0))
            stale = heartbeat_age > max(2 * interval, 2.0) or record.get("phase") == PHASE_EXITED
            if not stale:
                fleet_rate += rate
            workers.append({
                "worker_id": worker_id,
                "host": record.get("host"),
                "pid": record.get("pid"),
                "role": record.get("role", ROLE_WORKER),
                "phase": record.get("phase"),
                "unit": record.get("unit"),
                "stage": record.get("stage"),
                "heartbeat_age": round(heartbeat_age, 3),
                "units_done": record.get("units_done", 0),
                "runs_done": record.get("runs_done", 0),
                "commits": record.get("commits", 0),
                "duplicates": record.get("duplicates", 0),
                "sim_events": record.get("sim_events", 0),
                "events_per_sec": 0.0 if stale else rate,
                "straggler": reason is not None,
                "straggler_reason": reason,
            })
        if METRICS.enabled:
            METRICS.gauge("fleet.workers").set_max(float(len(workers)))
        return {
            "now": round(now, 6),
            "workers": workers,
            "stragglers": stragglers,
            "events_per_sec": round(fleet_rate, 1),
            "torn_records": self.torn_records,
        }

    def merged_metrics(
        self, include_roles: Iterable[str] = (ROLE_WORKER,)
    ) -> Dict[str, Any]:
        """Fold the latest metrics snapshot of each matching participant.

        Records are cumulative per participant, so the merge is exact:
        counters add across hosts, gauges keep the max, histograms add
        bucket-wise.  Returns ``{}`` when nobody published metrics.
        """
        roles = set(include_roles)
        snapshots = [
            record["metrics"]
            for record in self.statuses().values()
            if record.get("role") in roles and record.get("metrics")
        ]
        return merge_snapshots(snapshots) if snapshots else {}


# ----------------------------------------------------------------------
# one-shot snapshot (``repro top`` / ``repro report --store``)
# ----------------------------------------------------------------------
def _lease_rollup(store: ArtifactStore) -> Dict[str, Any]:
    """Lease-state counts plus per-stage unit completion, straight from
    the store (corrupt records read as pending, like the queue does)."""
    states = {STATE_PENDING: 0, STATE_LEASED: 0, STATE_DONE: 0}
    reclaims = 0
    stages: Dict[str, Dict[str, int]] = {}
    for unit_id in store.keys(NS_LEASES):
        try:
            lease = store.get(NS_LEASES, unit_id)
        except Exception:  # noqa: BLE001 - torn lease record
            lease = None
        state = (lease or {}).get("state", STATE_PENDING)
        states[state] = states.get(state, 0) + 1
        reclaims += int((lease or {}).get("reclaims", 0))
        try:
            unit = store.get(NS_UNITS, unit_id)
        except Exception:  # noqa: BLE001
            unit = None
        stage = (unit or {}).get("stage", "?")
        bucket = stages.setdefault(stage, {"done": 0, "total": 0})
        bucket["total"] += 1
        if state == STATE_DONE:
            bucket["done"] += 1
    total = sum(states.values())
    return {
        "pending": states.get(STATE_PENDING, 0),
        "leased": states.get(STATE_LEASED, 0),
        "done": states.get(STATE_DONE, 0),
        "total": total,
        "reclaims": reclaims,
        "stages": stages,
    }


def fleet_overview(
    store: ArtifactStore,
    stall_window: float = DEFAULT_STALL_WINDOW,
    aggregator: Optional[FleetAggregator] = None,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Everything ``repro top`` renders, as one JSON-ready dict.

    Pass a long-lived ``aggregator`` to keep progress-based straggler
    detection across refreshes; a fresh one is built otherwise (heartbeat
    staleness still detects dead workers in a single shot).
    """
    from repro.fabric.worker import KEY_MANIFEST, NS_CAMPAIGN

    now = time.time() if now is None else now
    if aggregator is None:
        aggregator = FleetAggregator(store, stall_window=stall_window)
    try:
        manifest = store.get(NS_CAMPAIGN, KEY_MANIFEST)
    except Exception:  # noqa: BLE001 - torn manifest mid-rewrite
        manifest = None
    fleet = aggregator.poll(now=now)
    leases = _lease_rollup(store)
    eta: Optional[float] = None
    done, total = leases["done"], leases["total"]
    created_at = (manifest or {}).get("created_at")
    if created_at is not None and done and total > done:
        elapsed = max(now - float(created_at), 1e-6)
        eta = round((total - done) * elapsed / done, 1)
    return {
        "now": round(now, 6),
        "manifest": None if manifest is None else {
            "status": manifest.get("status"),
            "spec_fingerprint": manifest.get("spec_fingerprint"),
            "created_at": manifest.get("created_at"),
            "lease_ttl": manifest.get("lease_ttl"),
            "campaign_id": manifest.get("campaign_id"),
            "tenant": manifest.get("tenant"),
        },
        "workers": fleet["workers"],
        "stragglers": fleet["stragglers"],
        "events_per_sec": fleet["events_per_sec"],
        "torn_records": fleet.get("torn_records", 0),
        "leases": leases,
        "eta_seconds": eta,
    }


# ----------------------------------------------------------------------
# Prometheus text exposition (``repro report --export-prom``)
# ----------------------------------------------------------------------
def _prom_name(name: str, prefix: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"{prefix}_{cleaned}"


def _prom_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def prometheus_text(snapshot: Dict[str, Any], prefix: str = "repro") -> str:
    """Render a metrics snapshot in the Prometheus text format (0.0.4).

    Counters and gauges become single samples; fixed-bucket histograms
    become the canonical ``_bucket{le=...}`` / ``_sum`` / ``_count``
    series with cumulative bucket counts, which is exactly what the
    registry's inclusive upper bounds already are after a running sum.
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data.get("bounds", []), data.get("counts", [])):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {data.get("count", 0)}')
        lines.append(f"{metric}_sum {data.get('sum', 0.0)!r}")
        lines.append(f"{metric}_count {data.get('count', 0)}")
    return "\n".join(lines) + "\n"


__all__ = [
    "DEFAULT_STALL_WINDOW",
    "DEFAULT_TELEMETRY_INTERVAL",
    "PHASE_COORDINATING",
    "PHASE_EXECUTING",
    "PHASE_EXITED",
    "PHASE_IDLE",
    "ROLE_COORDINATOR",
    "ROLE_WORKER",
    "FleetAggregator",
    "FleetPublisher",
    "fleet_overview",
    "prometheus_text",
]
