"""The observability switch: picklable config + process-local activation.

:class:`ObsConfig` crosses process boundaries inside the parallel runner's
work items, so forked *and* spawned workers can configure their own bus and
registry before executing a run.  :func:`configure_observability` is
idempotent per config value — workers call it on every work item and pay a
dataclass equality check after the first.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional

from repro.obs.bus import BUS, JsonlTraceSink
from repro.obs.metrics import METRICS

log = logging.getLogger("repro.obs")


@dataclass(frozen=True)
class ObsConfig:
    """What to collect during a campaign (everything off by default)."""

    #: directory receiving per-process ``events-<pid>.jsonl`` trace files
    trace_dir: Optional[str] = None
    #: accumulate the metrics registry (merged across workers)
    metrics: bool = False
    #: directory receiving per-run cProfile ``.pstats`` dumps
    profile_dir: Optional[str] = None
    #: after the campaign, keep profiles only for the N slowest runs
    profile_keep: int = 5

    @property
    def active(self) -> bool:
        return bool(self.trace_dir or self.metrics or self.profile_dir)


#: the config currently applied to this process (None = never configured)
_APPLIED: Optional[ObsConfig] = None


def configure_observability(config: Optional[ObsConfig]) -> None:
    """Point the process-local bus/registry at what ``config`` asks for.

    Safe to call repeatedly with the same config (no-op), from the
    controller process and from pool workers alike.  ``None`` (or an
    all-off config) disables everything.
    """
    global _APPLIED
    if config is not None and config == _APPLIED:
        return
    _APPLIED = config
    if config is None or not config.active:
        BUS.configure(None)
        METRICS.enabled = False
        return
    BUS.configure(JsonlTraceSink(config.trace_dir) if config.trace_dir else None)
    METRICS.enabled = config.metrics
    log.info(
        "observability on: trace_dir=%s metrics=%s profile_dir=%s",
        config.trace_dir, config.metrics, config.profile_dir,
    )
