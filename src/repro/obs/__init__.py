"""Campaign observability: structured tracing, metrics, and profiling.

The paper's authors triage findings by *inspecting* what the testbed saw —
"manually inspect the packet captures" — and SNPSFuzzer-style speedup
claims rest on per-phase timing.  This package gives the campaign runtime
the same visibility without giving up throughput:

* :mod:`repro.obs.bus` — a process-local event bus emitting structured
  spans and events (campaign → strategy → run attempt → sim phases) to a
  per-campaign JSONL trace directory.
* :mod:`repro.obs.metrics` — a metrics registry (counters, gauges,
  fixed-bucket histograms) instrumented into the runtime's hot paths and
  mergeable across worker processes.
* :mod:`repro.obs.config` — the picklable :class:`ObsConfig` switch that
  turns both on; everything is a no-op (one attribute check) when off.
* :mod:`repro.obs.profiling` — opt-in per-run cProfile dumps, pruned to
  the N slowest runs after a campaign.
* :mod:`repro.obs.store` — loaders for the trace directory and metrics
  snapshots, consumed by ``repro report``.
"""

from repro.obs.bus import BUS, EventBus, JsonlTraceSink, MemorySink, NullSink
from repro.obs.config import ObsConfig, configure_observability
from repro.obs.metrics import (
    METRICS,
    MetricsRegistry,
    histogram_mean,
    histogram_percentile,
    merge_snapshots,
)
from repro.obs.profiling import profile_run, prune_profiles
from repro.obs.store import load_metrics_snapshot, load_trace_dir, run_spans, transition_events

__all__ = [
    "BUS",
    "EventBus",
    "JsonlTraceSink",
    "MemorySink",
    "NullSink",
    "ObsConfig",
    "configure_observability",
    "METRICS",
    "MetricsRegistry",
    "histogram_mean",
    "histogram_percentile",
    "merge_snapshots",
    "profile_run",
    "prune_profiles",
    "load_metrics_snapshot",
    "load_trace_dir",
    "run_spans",
    "transition_events",
]
