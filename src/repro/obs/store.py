"""Loaders for trace directories and metrics snapshots.

The write side (:class:`~repro.obs.bus.JsonlTraceSink`) produces one JSONL
file per process in a shared directory; this module reads them all back,
merges on timestamp, and offers the small selections ``repro report``
renders (run spans, state transitions, per-strategy timelines).  Corrupt
lines (a half-written tail after a hard kill) are skipped, mirroring the
checkpoint journal's crash tolerance.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, List, Optional

TraceEvent = Dict[str, Any]


def load_trace_dir(trace_dir: str) -> List[TraceEvent]:
    """Read every ``*.jsonl`` trace file in ``trace_dir``, sorted by time."""
    if not os.path.isdir(trace_dir):
        raise FileNotFoundError(f"trace directory {trace_dir!r} does not exist")
    events: List[TraceEvent] = []
    for path in sorted(glob.glob(os.path.join(trace_dir, "*.jsonl"))):
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # half-written tail
                if isinstance(record, dict) and "name" in record:
                    events.append(record)
    events.sort(key=lambda e: e.get("ts", 0.0))
    return events


def load_metrics_snapshot(path: str) -> Dict[str, Any]:
    """Read a metrics snapshot JSON written by ``repro campaign --metrics-out``."""
    with open(path, "r", encoding="utf-8") as fh:
        snapshot = json.load(fh)
    if not isinstance(snapshot, dict):
        raise ValueError(f"{path}: not a metrics snapshot")
    return snapshot


# ----------------------------------------------------------------------
# selections
# ----------------------------------------------------------------------
def run_spans(events: List[TraceEvent]) -> List[TraceEvent]:
    """All completed run attempts (``kind=span, name=run``)."""
    return [e for e in events if e.get("kind") == "span" and e.get("name") == "run"]


def transition_events(
    events: List[TraceEvent],
    strategy_id: Optional[int] = None,
    stage: Optional[str] = None,
) -> List[TraceEvent]:
    """State-tracker transition events, optionally narrowed to one strategy
    and/or one campaign stage (e.g. ``"baseline"``)."""
    out = [e for e in events if e.get("name") == "tracker.transition"]
    if strategy_id is not None:
        out = [e for e in out if e.get("strategy_id") == strategy_id]
    if stage is not None:
        out = [e for e in out if e.get("stage") == stage]
    return out


def strategy_timeline(
    events: List[TraceEvent], strategy_id: Optional[int]
) -> List[TraceEvent]:
    """Every record carrying the given strategy id, in time order.

    ``None`` selects the baseline timeline instead: the baseline runs carry
    no strategy id, so they are identified by their ``stage`` tag.
    """
    if strategy_id is None:
        return [e for e in events if e.get("stage") == "baseline"]
    return [e for e in events if e.get("strategy_id") == strategy_id]


def supervisor_kills(events: List[TraceEvent]) -> List[TraceEvent]:
    """Worker kill/loss events recorded by the supervised pool."""
    return [e for e in events if e.get("name") == "supervisor.kill"]


def quarantine_events(events: List[TraceEvent]) -> List[TraceEvent]:
    """Poison-strategy quarantine events recorded by the supervised pool."""
    return [e for e in events if e.get("name") == "supervisor.quarantine"]


def confirm_verdicts(events: List[TraceEvent]) -> List[TraceEvent]:
    """Confirm-stage verdict events (``detector.confirm``), one per candidate."""
    return [e for e in events if e.get("name") == "detector.confirm"]


def baseline_stats(events: List[TraceEvent]) -> Dict[str, Any]:
    """The recorded baseline noise band (``detector.baseline`` fields).

    Returns the last one in the trace (a resumed campaign re-emits it), or
    an empty dict when the campaign predates noise-aware detection.
    """
    stats: Dict[str, Any] = {}
    for event in events:
        if event.get("name") == "detector.baseline":
            stats = event.get("fields") or {}
    return stats


def has_baseline(events: List[TraceEvent]) -> bool:
    """Whether the trace contains baseline-stage records."""
    return any(e.get("stage") == "baseline" for e in events)


def strategy_ids(events: List[TraceEvent]) -> List[int]:
    """Distinct strategy ids present in the trace, sorted."""
    ids = {
        e["strategy_id"]
        for e in events
        if isinstance(e.get("strategy_id"), int)
    }
    return sorted(ids)
