"""Process-local event bus: structured spans and events.

The bus is the tracing half of :mod:`repro.obs`.  Producers call
:meth:`EventBus.emit` for point events and :meth:`EventBus.span` for timed
sections; ambient identity (campaign stage, strategy id, run attempt) is
attached with :meth:`EventBus.scope` so every record inside a run carries
its run context without threading arguments through every call site.

Records are plain dicts serialized to JSONL by a sink.  The bus is designed
to disappear when disabled: :attr:`EventBus.enabled` is a single attribute
check, ``span()`` returns a shared no-op context manager, and no record
dict is ever built.  Hot paths gate on ``BUS.enabled`` and pay one
attribute load when tracing is off.

Record schema (one JSON object per line)::

    {"ts": 1722890000.123456, "kind": "event", "name": "run.result",
     "stage": "sweep", "strategy_id": 1342, "attempt": 0, "seed": 7,
     "fields": {...}}
    {"ts": ..., "kind": "span", "name": "run", "dur": 0.182, ...}

``ts`` is wall-clock epoch seconds (span ``ts`` is its *start*); ``dur``
is wall seconds and only present on spans.  Context keys (``stage``,
``strategy_id``, ``attempt``, ``seed``, ...) appear flattened at the top
level; event-specific payload goes under ``fields``.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Any, Dict, List, Optional


class NullSink:
    """Discards everything (the default)."""

    def emit(self, record: Dict[str, Any]) -> None:  # pragma: no cover - never called
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Collects records in memory (tests, in-process inspection)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


def _host_token() -> str:
    """This host's name as a filename-safe token (trace filenames)."""
    host = socket.gethostname() or "host"
    return "".join(c if c.isalnum() or c in "-_" else "-" for c in host) or "host"


class JsonlTraceSink:
    """Appends records to ``<dir>/events-<host>-<pid>.jsonl``.

    Each process writes its own file, so a fork-pool of workers can share
    one trace directory without interleaving writes; the file handle is
    (re)opened lazily on first emit after a fork.  The hostname is part of
    the filename because pids recycle *across hosts*: two fabric workers on
    different machines sharing one NFS trace directory must never append to
    the same file.  ``repro report`` reads every ``*.jsonl`` in the
    directory (old ``events-<pid>.jsonl`` names included) and merges on
    timestamp.
    """

    def __init__(self, directory: str, prefix: str = "events"):
        self.directory = directory
        self.prefix = prefix
        self._fh: Optional[Any] = None
        self._pid: Optional[int] = None
        os.makedirs(directory, exist_ok=True)

    def emit(self, record: Dict[str, Any]) -> None:
        pid = os.getpid()
        if self._fh is None or self._pid != pid:
            # after fork the inherited handle belongs to the parent; drop the
            # reference (flushed-after-every-emit, so no buffered data is lost)
            path = os.path.join(
                self.directory, f"{self.prefix}-{_host_token()}-{pid}.jsonl"
            )
            self._fh = open(path, "a", encoding="utf-8")
            self._pid = pid
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None and self._pid == os.getpid():
            self._fh.close()
        self._fh = None
        self._pid = None


class _NoopSpan:
    """Shared do-nothing context manager returned while the bus is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _Span:
    __slots__ = ("_bus", "_name", "_fields", "_start_ts", "_t0")

    def __init__(self, bus: "EventBus", name: str, fields: Dict[str, Any]):
        self._bus = bus
        self._name = name
        self._fields = fields

    def __enter__(self) -> "_Span":
        self._start_ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._bus._emit_record(
            "span",
            self._name,
            self._fields,
            ts=self._start_ts,
            dur=time.perf_counter() - self._t0,
        )


class _Scope:
    __slots__ = ("_bus", "_overlay", "_saved")

    def __init__(self, bus: "EventBus", overlay: Dict[str, Any]):
        self._bus = bus
        self._overlay = overlay
        self._saved: Optional[Dict[str, Any]] = None

    def __enter__(self) -> "_Scope":
        self._saved = self._bus._context
        merged = dict(self._saved)
        merged.update(self._overlay)
        self._bus._context = merged
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._saved is not None
        self._bus._context = self._saved


class EventBus:
    """Structured event/span emitter with ambient context.

    One module-level instance (:data:`BUS`) serves the whole process; the
    campaign runtime configures it via
    :func:`repro.obs.config.configure_observability`.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._sink: Any = NullSink()
        self._context: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def configure(self, sink: Optional[Any]) -> None:
        """Install a sink (``None`` disables the bus)."""
        if self._sink is not None and sink is not self._sink:
            self._sink.close()
        self._sink = sink if sink is not None else NullSink()
        self.enabled = sink is not None

    # ------------------------------------------------------------------
    def scope(self, **context: Any) -> _Scope:
        """Overlay ambient context for everything emitted inside the block."""
        return _Scope(self, context)

    def emit(self, name: str, **fields: Any) -> None:
        """Emit one point event (no-op while disabled)."""
        if not self.enabled:
            return
        self._emit_record("event", name, fields, ts=time.time())

    def span(self, name: str, **fields: Any):
        """Time a section; the record is emitted when the block exits."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, fields)

    # ------------------------------------------------------------------
    def _emit_record(
        self,
        kind: str,
        name: str,
        fields: Dict[str, Any],
        ts: float,
        dur: Optional[float] = None,
    ) -> None:
        if not self.enabled:
            return
        record: Dict[str, Any] = {"ts": round(ts, 6), "kind": kind, "name": name}
        if dur is not None:
            record["dur"] = round(dur, 6)
        if self._context:
            record.update(self._context)
        if fields:
            record["fields"] = fields
        self._sink.emit(record)


#: the process-wide bus; configure via :func:`repro.obs.config.configure_observability`
BUS = EventBus()
