"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Prometheus-flavoured but dependency-free and multiprocessing-aware: every
worker process accumulates into its own process-local registry, snapshots
it after each run, and the parent merges the snapshots back into the
campaign-level registry (counters add, gauges take the max, histograms add
bucket-wise).  Fixed bucket bounds are what make the merge exact — two
snapshots of the same histogram always share a schema.

Like the event bus, the registry is built to vanish when disabled: hot
paths gate on :attr:`MetricsRegistry.enabled` (instrumentation records
once per *run*, never per simulated packet) and the whole subsystem costs
one attribute check when off.

Canonical metric names are documented in ``docs/observability.md``.
Supervision and verdict counters live in the parent process only:
``supervisor.kills`` / ``supervisor.worker_lost`` / ``supervisor.respawns``
/ ``supervisor.recycled`` / ``supervisor.redispatched`` /
``supervisor.quarantines`` count the supervised pool's interventions, and
``detector.confirmed`` / ``detector.flaky`` count confirm-stage verdicts.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: wall-time buckets (seconds): 1 ms .. 60 s, roughly ×2.5 per step
TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: event-rate buckets (events/second): 1k .. 10M
RATE_BUCKETS: Tuple[float, ...] = (
    1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7,
)

#: dispatch batch-size buckets (strategies per worker round-trip): 1 .. 256
BATCH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Counter:
    """Monotonic count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-set value; merges as max across workers (used for peaks)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket catches everything above the last bound.  Percentiles are
    linearly interpolated inside the winning bucket, which is exact enough
    for triage tables (the error is bounded by the bucket width).
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = TIME_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, p: float) -> float:
        return histogram_percentile(self.snapshot(), p)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


def histogram_percentile(snapshot: Dict[str, Any], p: float) -> float:
    """Estimate the ``p`` percentile (0..1) from a histogram snapshot.

    Linear interpolation inside the winning bucket, clamped to the observed
    [min, max] so a wide bucket can never report a percentile above the
    largest value actually seen.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"percentile must be in [0, 1], got {p}")
    total = snapshot.get("count", 0)
    if not total:
        return 0.0
    bounds = snapshot["bounds"]
    counts = snapshot["counts"]
    observed_min = snapshot.get("min")
    observed_max = snapshot.get("max")
    rank = p * total
    cumulative = 0.0
    estimate: float = observed_max if observed_max is not None else bounds[-1]
    for i, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            lo = bounds[i - 1] if i > 0 else (observed_min or 0.0)
            hi = bounds[i] if i < len(bounds) else (observed_max or bounds[-1])
            fraction = (rank - cumulative) / bucket_count
            estimate = lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            break
        cumulative += bucket_count
    if observed_max is not None and estimate > observed_max:
        estimate = observed_max
    if observed_min is not None and estimate < observed_min:
        estimate = observed_min
    return estimate


def histogram_mean(snapshot: Dict[str, Any]) -> float:
    count = snapshot.get("count", 0)
    return snapshot.get("sum", 0.0) / count if count else 0.0


class MetricsRegistry:
    """Named counters/gauges/histograms, snapshot-able and mergeable."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str, bounds: Sequence[float] = TIME_BUCKETS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds)
        return histogram

    def inc(self, name: str, n: int = 1) -> None:
        """Convenience: increment a counter (creates it on first use)."""
        self.counter(name).inc(n)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable dump of everything recorded so far."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }

    def snapshot_and_reset(self) -> Dict[str, Any]:
        """Snapshot then clear — the per-run delta a worker ships back."""
        snap = self.snapshot()
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        return snap

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold one snapshot (e.g. a worker's per-run delta) into this
        registry: counters add, gauges keep the max, histograms add
        bucket-wise (bounds must match — they always do, by construction)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set_max(float(value))
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, bounds=data["bounds"])
            if list(histogram.bounds) != list(data["bounds"]):
                raise ValueError(
                    f"histogram {name!r}: merge with mismatched bounds"
                )
            for i, bucket_count in enumerate(data["counts"]):
                histogram.counts[i] += bucket_count
            histogram.count += data["count"]
            histogram.sum += data["sum"]
            if data.get("min") is not None:
                if histogram.min is None or data["min"] < histogram.min:
                    histogram.min = data["min"]
            if data.get("max") is not None:
                if histogram.max is None or data["max"] > histogram.max:
                    histogram.max = data["max"]


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge snapshot dicts without touching any live registry."""
    registry = MetricsRegistry(enabled=True)
    for snap in snapshots:
        registry.merge(snap)
    return registry.snapshot()


class ScopedMetrics(MetricsRegistry):
    """The process registry, with optional per-thread scoping.

    By default this *is* the ordinary process-wide registry.  A thread
    that enters :meth:`scoped` routes every metric call on that thread —
    counters, snapshots, merges, the ``enabled`` flag — to its own
    :class:`MetricsRegistry` until the block exits.  That is how one
    service process drives N concurrent campaigns without their metric
    snapshots cross-polluting: each campaign's drive thread (and the fork
    pools it spawns, which inherit the forking thread's routing) records
    into the campaign's private registry, and the campaign folds it into
    the process registry on completion.

    Threads that never call :meth:`scoped` see the exact historical
    single-registry behaviour.
    """

    def __init__(self, enabled: bool = False):
        self._tls = threading.local()
        super().__init__(enabled)

    def _route(self) -> Optional[MetricsRegistry]:
        return getattr(self._tls, "registry", None)

    # ``enabled`` routes too: ``configure_observability`` assigns it, and
    # inside a campaign scope that must toggle the campaign's registry,
    # not the process one
    @property
    def enabled(self) -> bool:  # type: ignore[override]
        registry = self._route()
        return registry.enabled if registry is not None else self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        registry = self._route()
        if registry is not None:
            registry.enabled = value
        else:
            self._enabled = value

    @contextmanager
    def scoped(self, registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
        """Route this thread's metric calls into ``registry`` for the block."""
        previous = self._route()
        self._tls.registry = registry
        try:
            yield registry
        finally:
            self._tls.registry = previous

    def active_registry(self) -> Optional[MetricsRegistry]:
        """This thread's scoped registry, ``None`` when unscoped.  Capture
        it before spawning a helper thread that should record into the
        same scope (thread-locals do not inherit)."""
        return self._route()

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        registry = self._route()
        return registry.counter(name) if registry is not None else super().counter(name)

    def gauge(self, name: str) -> Gauge:
        registry = self._route()
        return registry.gauge(name) if registry is not None else super().gauge(name)

    def histogram(self, name: str, bounds: Sequence[float] = TIME_BUCKETS) -> Histogram:
        registry = self._route()
        if registry is not None:
            return registry.histogram(name, bounds)
        return super().histogram(name, bounds)

    def snapshot(self) -> Dict[str, Any]:
        registry = self._route()
        return registry.snapshot() if registry is not None else super().snapshot()

    def snapshot_and_reset(self) -> Dict[str, Any]:
        registry = self._route()
        if registry is not None:
            return registry.snapshot_and_reset()
        return super().snapshot_and_reset()

    def reset(self) -> None:
        registry = self._route()
        if registry is not None:
            registry.reset()
        else:
            super().reset()

    def merge(self, snapshot: Dict[str, Any]) -> None:
        registry = self._route()
        if registry is not None:
            registry.merge(snapshot)
        else:
            super().merge(snapshot)


#: the process-wide registry; enable via
#: :func:`repro.obs.config.configure_observability`.  Campaign drive
#: threads scope it per campaign via :meth:`ScopedMetrics.scoped`.
METRICS = ScopedMetrics()
