"""Protocol state machines: dot parsing, modelling, and runtime tracking.

SNAKE takes the protocol state machine "written in the dot language" as
input and infers, purely from observed packets, which state each endpoint is
in.  This package contains the dot parser (:mod:`repro.statemachine.dot`),
the state-machine model (:mod:`repro.statemachine.machine`), the runtime
tracker with per-state statistics (:mod:`repro.statemachine.tracker`), and
the TCP (RFC 793) and DCCP (RFC 4340) machine descriptions under
``specs/``.
"""

from repro.statemachine.dot import DotParseError, parse_dot
from repro.statemachine.machine import StateMachine, Transition, TriggerEvent
from repro.statemachine.tracker import EndpointTracker, StateStats, StateTracker
from repro.statemachine.infer import (
    InferredStateMachine,
    events_from_trace,
    infer_from_traces,
    infer_state_machine,
)
from repro.statemachine.specs import load_spec, tcp_state_machine, dccp_state_machine

__all__ = [
    "DotParseError",
    "parse_dot",
    "StateMachine",
    "Transition",
    "TriggerEvent",
    "EndpointTracker",
    "StateStats",
    "StateTracker",
    "InferredStateMachine",
    "events_from_trace",
    "infer_from_traces",
    "infer_state_machine",
    "load_spec",
    "tcp_state_machine",
    "dccp_state_machine",
]
