"""State-machine model built from a dot graph.

Edge labels follow the convention of the classic RFC 793 diagram::

    rcv SYN / snd SYN+ACK       receive-triggered, with a send side effect
    snd FIN+ACK                 send-triggered
    rcv ACK|DATAACK             alternation: any listed type triggers
    rcv *                       wildcard: any packet type triggers

Only packet-observable triggers participate in tracking; labels such as
``app:close`` or ``timeout`` are preserved (they document the protocol) but
never fire from packet observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.statemachine.dot import DotGraph, parse_dot

SND = "snd"
RCV = "rcv"


@dataclass(frozen=True)
class TriggerEvent:
    """A packet-observable event relative to one endpoint."""

    direction: str  # SND or RCV
    packet_type: str

    def __post_init__(self) -> None:
        if self.direction not in (SND, RCV):
            raise ValueError(f"bad direction {self.direction!r}")


@dataclass(frozen=True)
class Transition:
    """One edge of the state machine."""

    src: str
    dst: str
    #: trigger direction (snd/rcv), or None for non-packet triggers
    direction: Optional[str]
    #: packet types that fire this transition; empty with wildcard=True means any
    packet_types: FrozenSet[str]
    wildcard: bool
    label: str

    def matches(self, event: TriggerEvent) -> bool:
        if self.direction is None or event.direction != self.direction:
            return False
        return self.wildcard or event.packet_type in self.packet_types


def _parse_label(label: str) -> Tuple[Optional[str], FrozenSet[str], bool]:
    """Extract (direction, packet types, wildcard) from an edge label.

    Only the part before the first ``/`` is the trigger; anything after it is
    a side effect and irrelevant for tracking.
    """
    trigger = label.split("/", 1)[0].strip()
    parts = trigger.split(None, 1)
    if len(parts) != 2 or parts[0] not in (SND, RCV):
        return None, frozenset(), False
    direction, types_text = parts
    if types_text.strip() == "*":
        return direction, frozenset(), True
    types = frozenset(t.strip().upper() for t in types_text.split("|") if t.strip())
    return direction, types, False


class StateMachine:
    """A protocol connection-lifecycle state machine.

    Built from a dot graph whose graph attributes name the initial states:
    ``client_initial`` and ``server_initial`` (e.g. ``CLOSED``/``LISTEN`` for
    TCP).  Transitions are indexed by source state for O(edges-per-state)
    lookup during tracking.
    """

    def __init__(self, graph: DotGraph):
        self.name = graph.name
        self.states: Tuple[str, ...] = tuple(graph.nodes)
        if not self.states:
            raise ValueError("state machine has no states")
        try:
            self.client_initial = graph.attrs["client_initial"]
            self.server_initial = graph.attrs["server_initial"]
        except KeyError as exc:
            raise ValueError(f"dot graph must define graph attribute {exc}") from None
        for initial in (self.client_initial, self.server_initial):
            if initial not in graph.nodes:
                raise ValueError(f"initial state {initial!r} is not declared")
        self.transitions: List[Transition] = []
        self._by_src: Dict[str, List[Transition]] = {state: [] for state in self.states}
        for edge in graph.edges:
            direction, types, wildcard = _parse_label(edge.label)
            transition = Transition(edge.src, edge.dst, direction, types, wildcard, edge.label)
            self.transitions.append(transition)
            self._by_src[edge.src].append(transition)

    @classmethod
    def from_dot(cls, text: str) -> "StateMachine":
        return cls(parse_dot(text))

    # ------------------------------------------------------------------
    def initial_state(self, role: str) -> str:
        if role == "client":
            return self.client_initial
        if role == "server":
            return self.server_initial
        raise ValueError(f"unknown role {role!r}")

    def next_state(self, state: str, event: TriggerEvent) -> Optional[str]:
        """State reached from ``state`` on ``event``, or None if no edge fires.

        Exact packet-type matches win over wildcard edges, so a state can
        say "RESPONSE advances, anything else resets" (DCCP REQUEST).
        """
        wildcard_dst: Optional[str] = None
        for transition in self._by_src.get(state, ()):
            if not transition.matches(event):
                continue
            if transition.wildcard:
                if wildcard_dst is None:
                    wildcard_dst = transition.dst
            else:
                return transition.dst
        return wildcard_dst

    def outgoing(self, state: str) -> List[Transition]:
        return list(self._by_src.get(state, ()))

    def reachable_states(self) -> FrozenSet[str]:
        """States reachable from either initial state (sanity checking)."""
        frontier = [self.client_initial, self.server_initial]
        seen = set(frontier)
        while frontier:
            state = frontier.pop()
            for transition in self._by_src.get(state, ()):
                if transition.dst not in seen:
                    seen.add(transition.dst)
                    frontier.append(transition.dst)
        return frozenset(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StateMachine {self.name} states={len(self.states)} transitions={len(self.transitions)}>"
