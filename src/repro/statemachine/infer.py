"""Passive protocol state-machine inference from packet traces.

For proprietary protocols without a documented state machine, the paper
points at trace-based inference ("recent work in state machine inference
may be leveraged [20]").  This module closes that loop: it infers a
connection-lifecycle machine from captured traces using a k-tails-style
algorithm and exports it *in the dot dialect SNAKE consumes*, so an
inferred machine can drive the same state-aware attack search as a
specification machine.

Pipeline::

    traces = [PacketTrace ...]                    # one per observed connection
    sequences = [events_from_trace(t, "client1") for t in traces]
    inferred = infer_state_machine(sequences, k=2)
    machine = StateMachine.from_dot(inferred.to_dot("mystery", "client1"))

Algorithm: build a prefix-tree acceptor over the per-endpoint event
sequences (events are ``(snd|rcv, packet type)``), compute each node's
k-tail signature (the set of event strings of length <= k leaving it), and
repeatedly merge nodes with identical signatures.  With lifecycle-granular
machines (the paper's use case) and a handful of traces this recovers the
specification machine's shape.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.netsim.trace import PacketTrace, TraceRecord
from repro.statemachine.machine import RCV, SND

Event = Tuple[str, str]  # (direction, packet_type)


def events_from_trace(
    trace: Iterable[TraceRecord], endpoint: str, dedupe_runs: bool = True
) -> List[Event]:
    """Project a capture onto one endpoint's event sequence.

    ``dedupe_runs`` collapses repeated cycles of up to three events — the
    hundreds of interleaved data/ack packets inside the transfer phase —
    so the lifecycle skeleton dominates, mirroring how lifecycle machines
    abstract data transfer into a single state.
    """
    events: List[Event] = []
    for record in trace:
        if record.src == endpoint:
            event = (SND, record.packet_type)
        elif record.dst == endpoint:
            event = (RCV, record.packet_type)
        else:
            continue
        events.append(event)
        if dedupe_runs:
            _collapse_tail(events)
    return events


def _collapse_tail(events: List[Event]) -> None:
    """Remove the newest cycle if it repeats the one before it (period <= 3)."""
    changed = True
    while changed:
        changed = False
        for period in (1, 2, 3):
            if len(events) >= 2 * period and events[-period:] == events[-2 * period:-period]:
                del events[-period:]
                changed = True
                break


@dataclass
class _Node:
    """Prefix-tree node."""

    node_id: int
    edges: Dict[Event, int] = field(default_factory=dict)
    visits: int = 0


class InferredStateMachine:
    """The inference result: a deterministic event-labelled machine."""

    def __init__(self, initial: int, transitions: Dict[Tuple[int, Event], int]):
        self.initial = initial
        self.transitions = dict(transitions)
        states = {initial}
        for (src, _), dst in transitions.items():
            states.add(src)
            states.add(dst)
        self.states: Tuple[int, ...] = tuple(sorted(states))

    # ------------------------------------------------------------------
    def next_state(self, state: int, event: Event) -> Optional[int]:
        return self.transitions.get((state, event))

    def accepts(self, sequence: Sequence[Event]) -> bool:
        """Does the machine have a defined path for the whole sequence?"""
        state = self.initial
        for event in sequence:
            nxt = self.next_state(state, event)
            if nxt is None:
                return False
            state = nxt
        return True

    def coverage(self, sequences: Iterable[Sequence[Event]]) -> float:
        """Fraction of events across sequences with a defined transition."""
        total = 0
        covered = 0
        for sequence in sequences:
            state = self.initial
            for event in sequence:
                total += 1
                nxt = self.next_state(state, event)
                if nxt is None:
                    break
                covered += 1
                state = nxt
        return covered / total if total else 1.0

    # ------------------------------------------------------------------
    def to_dot(self, name: str, role: str = "client") -> str:
        """Serialize in the dot dialect :class:`StateMachine` parses.

        Both initial-state attributes point at the inferred initial state;
        callers inferring client and server machines separately can merge
        by hand or track each endpoint with its own machine.
        """
        lines = [f"digraph {name} {{"]
        lines.append(f"    client_initial = S{self.initial};")
        lines.append(f"    server_initial = S{self.initial};")
        for state in self.states:
            lines.append(f"    S{state};")
        for (src, (direction, ptype)), dst in sorted(
            self.transitions.items(), key=lambda item: (item[0][0], item[0][1], item[1])
        ):
            lines.append(f'    S{src} -> S{dst} [label="{direction} {ptype}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InferredStateMachine states={len(self.states)} "
            f"transitions={len(self.transitions)}>"
        )


def _build_prefix_tree(sequences: Sequence[Sequence[Event]]) -> List[_Node]:
    nodes: List[_Node] = [_Node(0)]
    for sequence in sequences:
        current = 0
        nodes[0].visits += 1
        for event in sequence:
            node = nodes[current]
            if event not in node.edges:
                nodes.append(_Node(len(nodes)))
                node.edges[event] = len(nodes) - 1
            current = node.edges[event]
            nodes[current].visits += 1
    return nodes


def _k_tail(nodes: List[_Node], node_id: int, k: int) -> FrozenSet[Tuple[Event, ...]]:
    """All event paths of length <= k leaving ``node_id`` (the k-tail)."""
    tails = set()
    frontier = deque([(node_id, ())])
    while frontier:
        current, path = frontier.popleft()
        tails.add(path)
        if len(path) == k:
            continue
        for event, nxt in nodes[current].edges.items():
            frontier.append((nxt, path + (event,)))
    return frozenset(tails)


def infer_state_machine(
    sequences: Sequence[Sequence[Event]], k: int = 2
) -> InferredStateMachine:
    """k-tails inference over per-endpoint event sequences."""
    if not sequences:
        raise ValueError("need at least one event sequence")
    nodes = _build_prefix_tree(sequences)

    # iterate: partition nodes by k-tail signature, rewire, repeat
    representative = list(range(len(nodes)))
    for _ in range(len(nodes)):
        signature_of: Dict[int, FrozenSet[Tuple[Event, ...]]] = {}
        for node in nodes:
            signature_of[node.node_id] = _k_tail(nodes, node.node_id, k)
        groups: Dict[FrozenSet[Tuple[Event, ...]], int] = {}
        changed = False
        mapping: Dict[int, int] = {}
        for node in nodes:
            signature = signature_of[node.node_id]
            if signature not in groups:
                groups[signature] = node.node_id
            mapping[node.node_id] = groups[signature]
            if mapping[node.node_id] != node.node_id:
                changed = True
        if not changed:
            break
        # rewire edges through the mapping and drop merged nodes
        merged: Dict[int, _Node] = {}
        for node in nodes:
            target = mapping[node.node_id]
            keep = merged.setdefault(target, _Node(target))
            keep.visits += node.visits
            for event, dst in node.edges.items():
                keep.edges[event] = mapping[dst]
        # renumber densely, preserving the root at 0
        ordering = sorted(merged, key=lambda node_id: (node_id != mapping[0], node_id))
        renumber = {old: new for new, old in enumerate(ordering)}
        new_nodes: List[_Node] = []
        for old in ordering:
            node = merged[old]
            renamed = _Node(renumber[old])
            renamed.visits = node.visits
            renamed.edges = {event: renumber[dst] for event, dst in node.edges.items()}
            new_nodes.append(renamed)
        nodes = new_nodes

    transitions: Dict[Tuple[int, Event], int] = {}
    for node in nodes:
        for event, dst in node.edges.items():
            transitions[(node.node_id, event)] = dst
    return InferredStateMachine(0, transitions)


def infer_from_traces(
    traces: Sequence[PacketTrace], endpoint: str, k: int = 2
) -> InferredStateMachine:
    """Convenience: project traces onto ``endpoint`` and infer."""
    sequences = [events_from_trace(trace, endpoint) for trace in traces]
    return infer_state_machine([s for s in sequences if s], k=k)
