"""A small parser for the subset of the dot language SNAKE uses.

The paper represents protocol state machines in dot so that a new protocol
can be plugged in "simply by swapping out the state machine and packet
header descriptions".  We support the subset needed for that:

* ``digraph name { ... }``
* graph attributes — ``client_initial=SYN_SENT;``
* node declarations with optional attribute lists — ``CLOSED [final=true];``
* edges with attribute lists — ``A -> B [label="rcv SYN / snd SYN+ACK"];``
* ``//`` and ``#`` line comments, quoted or bare identifiers

The parse result is deliberately dumb data (:class:`DotGraph`); translating
edge labels into transition triggers happens in
:mod:`repro.statemachine.machine`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class DotParseError(ValueError):
    """Raised when the dot text cannot be parsed."""


@dataclass
class DotNode:
    name: str
    attrs: Dict[str, str] = field(default_factory=dict)


@dataclass
class DotEdge:
    src: str
    dst: str
    attrs: Dict[str, str] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.attrs.get("label", "")


@dataclass
class DotGraph:
    name: str
    attrs: Dict[str, str] = field(default_factory=dict)
    nodes: Dict[str, DotNode] = field(default_factory=dict)
    edges: List[DotEdge] = field(default_factory=list)

    def node(self, name: str) -> DotNode:
        if name not in self.nodes:
            self.nodes[name] = DotNode(name)
        return self.nodes[name]


_GRAPH_RE = re.compile(r"\s*digraph\s+(\w+)\s*\{(.*)\}\s*$", re.S)
_ATTR_LIST_RE = re.compile(r"\[(.*)\]\s*$", re.S)
_ATTR_RE = re.compile(r'(\w+)\s*=\s*(?:"((?:[^"\\]|\\.)*)"|([\w.+|*!-]+))')
_EDGE_RE = re.compile(r'^"?([\w.+-]+)"?\s*->\s*"?([\w.+-]+)"?\s*(\[.*\])?\s*$', re.S)
_NODE_RE = re.compile(r'^"?([\w.+-]+)"?\s*(\[.*\])?\s*$', re.S)
_GRAPH_ATTR_RE = re.compile(r'^(\w+)\s*=\s*(?:"((?:[^"\\]|\\.)*)"|([\w.+|*!-]+))\s*$')


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        for marker in ("//", "#"):
            idx = line.find(marker)
            if idx >= 0:
                line = line[:idx]
        lines.append(line)
    return "\n".join(lines)


def _split_statements(body: str) -> List[str]:
    """Split the graph body on semicolons that are outside quotes/brackets."""
    statements: List[str] = []
    current: List[str] = []
    in_quote = False
    depth = 0
    for ch in body:
        if ch == '"':
            in_quote = not in_quote
        elif not in_quote:
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth = max(0, depth - 1)
            elif ch in ";\n" and depth == 0:
                stmt = "".join(current).strip()
                if stmt:
                    statements.append(stmt)
                current = []
                continue
        current.append(ch)
    stmt = "".join(current).strip()
    if stmt:
        statements.append(stmt)
    return statements


def _parse_attr_list(text: Optional[str]) -> Dict[str, str]:
    if not text:
        return {}
    inner = _ATTR_LIST_RE.match(text.strip())
    if inner is None:
        raise DotParseError(f"malformed attribute list: {text!r}")
    attrs: Dict[str, str] = {}
    for key, quoted, bare in _ATTR_RE.findall(inner.group(1)):
        attrs[key] = quoted.replace('\\"', '"') if quoted else bare
    return attrs


def parse_dot(text: str) -> DotGraph:
    """Parse dot text into a :class:`DotGraph`."""
    cleaned = _strip_comments(text)
    match = _GRAPH_RE.match(cleaned)
    if match is None:
        raise DotParseError("expected 'digraph <name> { ... }'")
    graph = DotGraph(match.group(1))
    for stmt in _split_statements(match.group(2)):
        edge_match = _EDGE_RE.match(stmt)
        if edge_match is not None:
            src, dst, attr_text = edge_match.groups()
            graph.node(src)
            graph.node(dst)
            graph.edges.append(DotEdge(src, dst, _parse_attr_list(attr_text)))
            continue
        graph_attr = _GRAPH_ATTR_RE.match(stmt)
        if graph_attr is not None:
            key, quoted, bare = graph_attr.groups()
            graph.attrs[key] = quoted if quoted else bare
            continue
        node_match = _NODE_RE.match(stmt)
        if node_match is not None:
            name, attr_text = node_match.groups()
            node = graph.node(name)
            node.attrs.update(_parse_attr_list(attr_text))
            continue
        raise DotParseError(f"cannot parse statement: {stmt!r}")
    return graph
