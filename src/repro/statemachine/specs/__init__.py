"""Bundled protocol state-machine descriptions (dot files)."""

from __future__ import annotations

from pathlib import Path

from repro.statemachine.machine import StateMachine

_SPEC_DIR = Path(__file__).resolve().parent


def load_spec(name: str) -> StateMachine:
    """Load a bundled dot spec by protocol name (``"tcp"`` or ``"dccp"``)."""
    path = _SPEC_DIR / f"{name}.dot"
    if not path.exists():
        available = sorted(p.stem for p in _SPEC_DIR.glob("*.dot"))
        raise FileNotFoundError(f"no bundled state machine {name!r}; available: {available}")
    return StateMachine.from_dot(path.read_text())


def tcp_state_machine() -> StateMachine:
    return load_spec("tcp")


def dccp_state_machine() -> StateMachine:
    return load_spec("dccp")
