"""Runtime protocol-state tracking from observed packets.

The tracker is the heart of SNAKE's search-space reduction: it watches the
packets crossing the attack proxy and infers which state each endpoint's
protocol machine is in, *without* instrumenting the implementation.  It also
keeps the per-state statistics the paper describes — packet types and counts
sent/received in each state, time spent in each state, and visit counts —
which the controller's feedback-driven strategy generation consumes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.obs.bus import BUS
from repro.statemachine.machine import RCV, SND, StateMachine, TriggerEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.packets.header import Header
    from repro.packets.packet import Packet


@dataclass
class StateStats:
    """Statistics for one (endpoint, state) pair."""

    visits: int = 0
    time_in_state: float = 0.0
    packets_sent: Counter = field(default_factory=Counter)
    packets_received: Counter = field(default_factory=Counter)

    @property
    def total_sent(self) -> int:
        return sum(self.packets_sent.values())

    @property
    def total_received(self) -> int:
        return sum(self.packets_received.values())


class EndpointTracker:
    """Tracks one endpoint's position in the state machine."""

    def __init__(self, machine: StateMachine, role: str, address: str):
        self.machine = machine
        self.role = role
        self.address = address
        self.state = machine.initial_state(role)
        self.stats: Dict[str, StateStats] = {}
        self._entered_at = 0.0
        self._enter(self.state, 0.0)
        self.transitions_taken: List[Tuple[float, str, str, str]] = []  # (time, src, event, dst)

    def _enter(self, state: str, now: float) -> None:
        stats = self.stats.setdefault(state, StateStats())
        stats.visits += 1
        self._entered_at = now

    def observe(self, direction: str, packet_type: str, now: float) -> Optional[str]:
        """Feed one packet event; returns the new state if a transition fired."""
        stats = self.stats.setdefault(self.state, StateStats())
        if direction == SND:
            stats.packets_sent[packet_type] += 1
        else:
            stats.packets_received[packet_type] += 1
        next_state = self.machine.next_state(self.state, TriggerEvent(direction, packet_type))
        if next_state is None or next_state == self.state:
            return None
        stats.time_in_state += now - self._entered_at
        self.transitions_taken.append((now, self.state, f"{direction} {packet_type}", next_state))
        if BUS.enabled:
            BUS.emit(
                "tracker.transition",
                role=self.role,
                sim_time=round(now, 6),
                src=self.state,
                event=f"{direction} {packet_type}",
                dst=next_state,
            )
        self.state = next_state
        self._enter(next_state, now)
        return next_state

    def finish(self, now: float) -> None:
        """Close out the time-in-state accounting at the end of a run."""
        self.stats.setdefault(self.state, StateStats()).time_in_state += now - self._entered_at
        self._entered_at = now


class StateTracker:
    """Tracks both endpoints of one connection from packets at the proxy.

    Parameters
    ----------
    machine:
        The protocol state machine (from the dot spec).
    client_address, server_address:
        Addresses of the two endpoints whose connection is tracked.
    packet_type_fn:
        Maps a header object to its canonical packet-type name
        (:func:`~repro.packets.tcp.tcp_packet_type` or
        :func:`~repro.packets.dccp.dccp_packet_type`).
    """

    def __init__(
        self,
        machine: StateMachine,
        client_address: str,
        server_address: str,
        packet_type_fn: Callable[["Header"], str],
    ):
        self.machine = machine
        self.client = EndpointTracker(machine, "client", client_address)
        self.server = EndpointTracker(machine, "server", server_address)
        self._by_address = {client_address: self.client, server_address: self.server}
        self.packet_type_fn = packet_type_fn
        #: (sender_state, packet_type) pairs seen, for strategy generation
        self.observed_pairs: Set[Tuple[str, str]] = set()
        self.packets_observed = 0
        #: packets between addresses the tracker does not know (e.g. forged
        #: off-path traffic aimed at the competing connection) — the blind
        #: spot the paper's authors triaged by reading packet captures
        self.packets_unmatched = 0
        #: callbacks fired as (role, new_state) on every inferred transition
        self.transition_listeners: List[Callable[[str, str], None]] = []
        #: callbacks fired as (sender_state, packet_type) the first time a
        #: pair is observed — the snapshot engine uses these to find the
        #: event ordinal at which a packet-rule trigger becomes reachable
        self.pair_listeners: List[Callable[[str, str], None]] = []

    # ------------------------------------------------------------------
    def endpoint(self, address: str) -> Optional[EndpointTracker]:
        return self._by_address.get(address)

    def state_of(self, address: str) -> Optional[str]:
        endpoint = self._by_address.get(address)
        return endpoint.state if endpoint is not None else None

    # ------------------------------------------------------------------
    def observe(self, packet: "Packet", now: float) -> Tuple[Optional[str], str]:
        """Observe one packet.

        Returns ``(sender_state_before_packet, packet_type)`` — the pair a
        strategy matches against.  Packets between unknown addresses are
        ignored (the proxy may carry other connections).
        """
        packet_type = self.packet_type_fn(packet.header)
        sender = self._by_address.get(packet.src)
        receiver = self._by_address.get(packet.dst)
        if sender is None and receiver is None:
            self.packets_unmatched += 1
            return None, packet_type
        self.packets_observed += 1
        sender_state = sender.state if sender is not None else None
        if sender_state is not None:
            pair = (sender_state, packet_type)
            if pair not in self.observed_pairs:
                self.observed_pairs.add(pair)
                for listener in list(self.pair_listeners):
                    listener(sender_state, packet_type)
        if sender is not None:
            new_state = sender.observe(SND, packet_type, now)
            if new_state is not None:
                self._fire_transition(sender.role, new_state)
        if receiver is not None:
            new_state = receiver.observe(RCV, packet_type, now)
            if new_state is not None:
                self._fire_transition(receiver.role, new_state)
        return sender_state, packet_type

    def _fire_transition(self, role: str, new_state: str) -> None:
        for listener in list(self.transition_listeners):
            listener(role, new_state)

    def finish(self, now: float) -> None:
        self.client.finish(now)
        self.server.finish(now)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Dict[str, StateStats]]:
        """Per-endpoint, per-state statistics (for executor reporting)."""
        return {"client": dict(self.client.stats), "server": dict(self.server.stats)}
